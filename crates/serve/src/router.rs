//! The fleet router: per-model global request streams over N shard
//! transports, grouped by a spec registry.
//!
//! The paper's architecture scales by *replicating compute* — many
//! identically-configured AIMC clusters behind an interconnect, all
//! serving one workload. [`FleetHandle`] is the host-side counterpart for
//! serving: a two-tier ingress where the router owns the **global stream
//! numbering**, stamps every request with its global index, and forwards
//! it to one of N shards — each a [`ShardTransport`], so whether the
//! replica lives in-process ([`LocalTransport`](crate::LocalTransport)) or
//! behind a wire ([`TcpTransport`](crate::TcpTransport)) is invisible
//! here.
//!
//! ## The registry: heterogeneous fleets
//!
//! Shards need not be identical. At assembly (and on every
//! [`FleetHandle::add_shard`]) the router probes each transport's
//! [`ShardSpec`] — `{model_id, xbar_cfg, noise, seed}` — and groups
//! transports by `model_id` into **model groups**. Each group owns its own
//! lease allocator, active lease, routing cursor, and stream counter, so
//! each model keeps its own bit-identical global stream `0, 1, 2, …`;
//! requests route by model id ([`FleetHandle::submit_to`]) and never cross
//! groups. Two transports claiming one model id with different device
//! recipes are refused ([`ServeError::SpecMismatch`]) — they would compute
//! different bits for the same coordinates. The classic single-model API
//! ([`FleetHandle::submit`] etc.) targets the first group, so homogeneous
//! fleets behave exactly as before the registry existed.
//!
//! > **Fleet invariance.** Because every request carries its global
//! > coordinate and every replica of its model group holds bit-identical
//! > conductances, the logits of request *k* are bit-identical to a solo
//! > single-session stream of the same images on that model's spec — for
//! > ANY shard count, ANY transport mix, ANY lease size, and ANY routing
//! > policy, no matter which shard evaluated which request.
//!
//! Indices come from a lease-based range allocator instead of a per-
//! request counter: the router claims an [`IndexLease`] block, picks the
//! shard for the **whole block** under the routing policy, and stamps
//! requests from the block locally — so a remote shard receives a run of
//! requests without any per-request index traffic, and the routing
//! decision is amortized over the lease. Lease length 1 degenerates to
//! exactly the per-request `fetch_add` routing of the in-process fleet.
//! Unused indices of a partially consumed lease are reclaimed on drain and
//! re-issued before any fresh index, so the stamped stream is always
//! `0, 1, 2, …` in submission order — the invariance's foundation.
//!
//! ## Elasticity
//!
//! The shard set is not fixed for the fleet's lifetime:
//!
//! * **Eviction.** A shard whose transport dies past its replay budget is
//!   *retired*, not mourned: the unstamped remainder of its active lease
//!   goes back to the allocator (so those coordinates are re-issued to a
//!   survivor, never skipped), its stranded requests are harvested as
//!   [`Orphan`]s and re-submitted **at their original coordinates** on
//!   survivors, and the failed submission retries on another shard. The
//!   caller observes nothing: the same `Pending` resolves with the same
//!   logits.
//! * **Live join.** [`FleetHandle::add_shard`] programs a fresh replica
//!   from the fleet seed via the control surface, replays the drift
//!   history so its conductances match the incumbents', and enters it
//!   into the routing rotation — where it is granted fresh leases like
//!   any other shard.
//!
//! Both directions preserve the invariance because the stream numbering —
//! not the placement — determines every logit.
//!
//! The router never inspects tensors and never blocks on inference: it is
//! a stamp-and-forward layer. Shard-side coalescing, backpressure, and
//! completion plumbing belong to the transports.

use crate::handle::{Pending, ServeError, ServeStats};
use crate::lease::LeaseAllocator;
use crate::qos::{Admission, AimdPacer, PacerConfig, Priority, QosClass, QosStats, ShedReason};
use crate::transport::{Orphan, ShardTransport};
use aimc_dnn::Tensor;
use aimc_parallel::Parallelism;
use aimc_wire::{IndexLease, ShardSpec};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// How the router picks the shard that receives each claimed lease block
/// (with lease length 1: each request).
///
/// Routing **never** affects results — that is the fleet invariance — so
/// the policy is purely a load/latency trade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePolicy {
    /// Cycle through shards in lease order: perfectly even request counts,
    /// oblivious to per-shard backlog.
    #[default]
    RoundRobin,
    /// Send each lease to the shard with the fewest requests in flight
    /// (ties break toward the lowest shard id): adapts to stragglers at
    /// the cost of one load probe per lease.
    LeastQueueDepth,
}

/// How a fleet routes and allocates its global stream: the routing policy
/// plus the lease length (indices claimed — and routed — per block).
///
/// The default (`RoundRobin`, lease 1) reproduces the in-process fleet's
/// per-request routing exactly. Longer leases amortize routing decisions
/// and index traffic for remote shards; **no setting changes a logit**.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetPolicy {
    /// Shard selection per lease block.
    pub route: RoutePolicy,
    /// Global indices claimed per lease (clamped to ≥ 1). Consecutive
    /// requests share a lease, hence a shard — lease 1 routes every
    /// request independently.
    pub lease_len: u64,
    /// Fleet-wide in-flight budgets per priority class, indexed by
    /// [`Priority::rank`]; `usize::MAX` means unbounded. A class at its
    /// budget sheds at the router with [`ShedReason::ClassBudget`] —
    /// before any stream index survives, so the numbering keeps no hole.
    pub class_budgets: [usize; Priority::COUNT],
    /// The router's AIMD congestion pacer over per-shard occupancy,
    /// driven by the shards' ECN-style pressure marks. Disabled by
    /// default; see [`PacerConfig`].
    pub pacer: PacerConfig,
}

impl FleetPolicy {
    /// Per-request routing (lease length 1) under `route`.
    pub fn new(route: RoutePolicy) -> Self {
        FleetPolicy {
            route,
            lease_len: 1,
            class_budgets: [usize::MAX; Priority::COUNT],
            pacer: PacerConfig::default(),
        }
    }

    /// Overrides the lease length (clamped to ≥ 1 at use).
    pub fn with_lease_len(mut self, lease_len: u64) -> Self {
        self.lease_len = lease_len;
        self
    }

    /// Bounds the fleet-wide in-flight budget of one priority class.
    pub fn with_class_budget(mut self, priority: Priority, budget: usize) -> Self {
        self.class_budgets[priority.rank()] = budget;
        self
    }

    /// Overrides the congestion-pacer configuration.
    pub fn with_pacer(mut self, pacer: PacerConfig) -> Self {
        self.pacer = pacer;
        self
    }
}

impl Default for FleetPolicy {
    fn default() -> Self {
        FleetPolicy::new(RoutePolicy::RoundRobin)
    }
}

/// The router's view of one shard seat: identity, availability, and the
/// calibration-freshness counters the background recalibration scheduler
/// plans from (see [`FleetHandle::shard_health`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealth {
    /// The model id of the group this seat belongs to.
    pub model_id: String,
    /// The seat's model-group index (stable, like shard ids).
    pub group: usize,
    /// Whether the seat is still in the routing rotation (not evicted).
    pub live: bool,
    /// Whether a maintenance operation (graceful removal or background
    /// recalibration) is currently keeping new work off the seat.
    pub draining: bool,
    /// Fleet drift transitions applied since this replica was last
    /// (re)programmed — zeroed by reprogram, live join, and background
    /// recalibration. The staleness signal [`RecalPolicy`] thresholds on.
    ///
    /// [`RecalPolicy`]: crate::RecalPolicy
    pub drift_age: u64,
    /// Background recalibrations completed on this seat.
    pub recals: u64,
}

/// Per-shard plus aggregated statistics of a fleet (see
/// [`FleetHandle::stats`]).
#[derive(Debug, Clone)]
pub struct FleetStats {
    /// One [`ServeStats`] snapshot per shard, in shard-id order (evicted
    /// shards keep reporting their last observed snapshot). Each
    /// snapshot's `drift_age` is the router's view of that seat (see
    /// [`ShardHealth::drift_age`]), so it is comparable across local and
    /// remote transports.
    pub shards: Vec<ServeStats>,
    /// The router's own QoS ledger: sheds decided at the fleet ingress
    /// (pacer overload, fleet class budgets) plus congestion marks the
    /// router observed. Disjoint from the shard ledgers — every admission
    /// outcome is counted exactly once, by the component that decided it.
    pub router: QosStats,
    /// One [`ShardHealth`] row per seat, in shard-id order.
    pub health: Vec<ShardHealth>,
}

impl FleetStats {
    /// The fleet-wide view: counters summed across shards, the largest
    /// batch observed anywhere, and every shard's queue-wait **samples
    /// pooled** before any percentile is taken.
    ///
    /// Pooling is deliberate: averaging per-shard percentiles would let a
    /// lightly loaded shard's fast p95 mask a congested shard's slow one.
    /// Percentiles over the merged samples weight every request equally,
    /// so `aggregate().queue_wait_percentile(0.95)` answers "what did the
    /// 95th-percentile *request* wait", not "what is the average shard
    /// like".
    pub fn aggregate(&self) -> ServeStats {
        let mut agg = ServeStats::default();
        for s in &self.shards {
            agg.submitted += s.submitted;
            agg.completed += s.completed;
            agg.rejected += s.rejected;
            agg.batches += s.batches;
            agg.dispatched += s.dispatched;
            agg.max_batch_observed = agg.max_batch_observed.max(s.max_batch_observed);
            agg.queue_waits.extend_from_slice(&s.queue_waits);
            agg.qos.merge(&s.qos);
            // Staleness is a worst-case property (the stalest replica
            // bounds the fleet's calibration freshness), so ages max
            // rather than sum; reprogram work performed does sum.
            agg.drift_age = agg.drift_age.max(s.drift_age);
            agg.reprograms += s.reprograms;
        }
        agg.qos.merge(&self.router);
        agg
    }
}

/// The lease currently being consumed: its block, how much is stamped,
/// and the shard the whole block routes to.
#[derive(Debug, Clone, Copy)]
struct ActiveLease {
    lease: IndexLease,
    used: u64,
    shard: usize,
}

/// One model group's routing state: the shard seats serving one model id,
/// plus that model's **own** global stream — allocator, active lease,
/// round-robin cursor, and stamped count. Streams never cross groups, so
/// every model keeps the bit-identical numbering `0, 1, 2, …` a solo
/// session of its spec would produce.
#[derive(Debug)]
struct GroupState {
    /// The spec every member must match exactly (replicas of one model id
    /// with different device recipes would compute different bits for the
    /// same coordinates — refused at registration).
    spec: ShardSpec,
    alloc: LeaseAllocator,
    active: Option<ActiveLease>,
    rr: usize,
    /// Requests stamped on this group's stream since the last reprogram
    /// rewind (the observable stream length).
    stamped: u64,
    /// Member seat ids, in registration order (append-only, like seats).
    members: Vec<usize>,
}

impl GroupState {
    fn new(spec: ShardSpec) -> Self {
        GroupState {
            spec,
            alloc: LeaseAllocator::new(),
            active: None,
            rr: 0,
            stamped: 0,
            members: Vec::new(),
        }
    }
}

/// Mutable routing state, under one lock: the registry's model groups and
/// the fleet-wide drift history.
#[derive(Debug)]
struct RouterState {
    /// The registry: one group per distinct model id, in first-appearance
    /// order. Group 0 is the assembly's first model — the target of the
    /// un-addressed (single-model) submission API.
    groups: Vec<GroupState>,
    /// Drift transitions applied since the last reprogram, in order —
    /// replayed onto late joiners and recalibrated shards so their
    /// conductances match the incumbents'. Fleet-wide: drift is a
    /// physical, per-device process, so every group experiences the same
    /// history.
    drift_log: Vec<f64>,
}

/// One shard's seat in the fleet: its transport, its congestion pacer,
/// and whether the router has retired it. Seats are never removed — shard
/// ids stay stable for stats and the active-lease bookkeeping — they are
/// only marked evicted and skipped by routing.
struct ShardSlot {
    transport: Box<dyn ShardTransport>,
    /// This shard's AIMD congestion window, fed by its pressure marks on
    /// every QoS-gated submission. Per-shard (not global) so one
    /// backpressured remote link closes only its own window.
    pacer: Mutex<AimdPacer>,
    /// The model group this seat was registered into (fixed for the
    /// seat's lifetime).
    group: usize,
    evicted: AtomicBool,
    /// Set while a maintenance operation (graceful removal, background
    /// recalibration) keeps new work off the seat; cleared when the seat
    /// returns to rotation. Routing skips draining seats exactly like
    /// evicted ones, but the state is temporary.
    draining: AtomicBool,
    /// Submissions that have claimed an index routed to this seat but not
    /// yet been forwarded to the transport. Maintenance operations wait
    /// for this to reach zero after setting `draining`, so no request can
    /// slip between the drain and the reprogram and observe
    /// mid-calibration conductances.
    submitting: AtomicU64,
    /// Fleet drift transitions since this replica was last (re)programmed
    /// (see [`ShardHealth::drift_age`]).
    drift_age: AtomicU64,
    /// Background recalibrations completed on this seat.
    recals: AtomicU64,
}

impl ShardSlot {
    fn new(transport: Box<dyn ShardTransport>, pacer: PacerConfig, group: usize) -> Arc<Self> {
        Arc::new(ShardSlot {
            transport,
            pacer: Mutex::new(AimdPacer::new(pacer)),
            group,
            evicted: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            submitting: AtomicU64::new(0),
            drift_age: AtomicU64::new(0),
            recals: AtomicU64::new(0),
        })
    }

    /// Whether the router still routes to this shard.
    fn live(&self) -> bool {
        !self.evicted.load(Ordering::Acquire)
    }

    /// Whether new work may land on this seat right now: live and not
    /// held out of rotation by a maintenance drain.
    fn routable(&self) -> bool {
        self.live() && !self.draining.load(Ordering::SeqCst)
    }
}

/// RAII token for one claimed-but-not-yet-forwarded submission: claimed
/// under the router lock, released when the transport call returns — the
/// window [`FleetHandle`] maintenance operations wait out (see
/// [`ShardSlot::submitting`]).
struct SubmitPermit<'a>(&'a ShardSlot);

impl Drop for SubmitPermit<'_> {
    fn drop(&mut self) {
        self.0.submitting.fetch_sub(1, Ordering::SeqCst);
    }
}

struct FleetInner {
    /// The shard seats. Behind a `RwLock` so [`FleetHandle::add_shard`]
    /// can grow the fleet while submissions route; existing seats are
    /// never removed or reordered.
    shards: RwLock<Vec<Arc<ShardSlot>>>,
    policy: FleetPolicy,
    state: Mutex<RouterState>,
    /// Epoch of the pacers' fake-clock timestamps (cooldown bookkeeping).
    epoch: Instant,
    /// Router-side QoS ledger: only decisions made *here* (pacer
    /// overload, fleet class budgets) — shard-decided outcomes live in
    /// the shard ledgers, so [`FleetStats::aggregate`] never double
    /// counts.
    qos: Mutex<QosStats>,
    /// Bridge threads forwarding rescued orphans' results into their
    /// original completion slots; joined by drain/shutdown so a rescued
    /// request settles before either returns.
    rescues: Mutex<Vec<JoinHandle<()>>>,
    /// Serializes the fleet-mutating maintenance operations (drift,
    /// reprogram, join, removal, recalibration) against each other —
    /// submissions never take it, so serving continues while one shard is
    /// in maintenance.
    ops: Mutex<()>,
}

impl std::fmt::Debug for FleetInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetInner")
            .field("shards", &self.shards.read().unwrap().len())
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

/// Clone-able ingress of a serving fleet: N shard transports behind one
/// router-owned global request stream (see the module docs and
/// `Platform::serve_fleet` / `Platform::serve_fleet_with` in the
/// `aimc-platform` facade).
///
/// All clones share the same shards, allocator, and routing cursor.
/// Requests submitted through any clone receive globally unique stream
/// indices.
#[derive(Debug, Clone)]
pub struct FleetHandle {
    inner: Arc<FleetInner>,
}

impl FleetHandle {
    /// Assembles a fleet from shard transports under `policy`.
    ///
    /// Each transport is probed for its [`ShardSpec`] and registered into
    /// the model group of its `model_id` (groups are created in
    /// first-appearance order, so group 0 — the target of the un-addressed
    /// submission API — is the first transport's model). Spec-less
    /// transports report [`ShardSpec::default`] and form one homogeneous
    /// group, exactly as before the registry existed.
    ///
    /// # Errors
    /// [`ServeError::NoShards`] if `shards` is empty — an empty fleet has
    /// nowhere to route, and the error is centralized here so every
    /// assembly path (`serve_fleet`, `serve_fleet_with`, direct
    /// construction) reports it identically instead of panicking.
    /// [`ServeError::SpecMismatch`] if two transports claim one model id
    /// with different device recipes — they could not be bit-identical
    /// replicas.
    pub fn new(
        shards: Vec<Box<dyn ShardTransport>>,
        policy: FleetPolicy,
    ) -> Result<Self, ServeError> {
        if shards.is_empty() {
            return Err(ServeError::NoShards);
        }
        let mut groups: Vec<GroupState> = Vec::new();
        let mut slots = Vec::with_capacity(shards.len());
        for (idx, t) in shards.into_iter().enumerate() {
            let spec = t.spec();
            let gid = match groups.iter().position(|g| g.spec.model_id == spec.model_id) {
                Some(gid) => {
                    if groups[gid].spec != spec {
                        return Err(ServeError::SpecMismatch(spec.model_id));
                    }
                    gid
                }
                None => {
                    groups.push(GroupState::new(spec));
                    groups.len() - 1
                }
            };
            groups[gid].members.push(idx);
            slots.push(ShardSlot::new(t, policy.pacer, gid));
        }
        Ok(FleetHandle {
            inner: Arc::new(FleetInner {
                shards: RwLock::new(slots),
                policy,
                state: Mutex::new(RouterState {
                    groups,
                    drift_log: Vec::new(),
                }),
                epoch: Instant::now(),
                qos: Mutex::new(QosStats::default()),
                rescues: Mutex::new(Vec::new()),
                ops: Mutex::new(()),
            }),
        })
    }

    /// A point-in-time copy of the shard seats (seats are append-only, so
    /// indices in the snapshot stay valid forever).
    fn shards_snapshot(&self) -> Vec<Arc<ShardSlot>> {
        self.inner.shards.read().unwrap().clone()
    }

    /// Whether no live shard can accept work — the fleet-level shutdown
    /// condition that distinguishes "this shard died" (evict and re-route)
    /// from "everything is closed" (report [`ServeError::ShutDown`]).
    fn fleet_is_dead(&self, shards: &[Arc<ShardSlot>]) -> bool {
        shards
            .iter()
            .filter(|s| s.live())
            .all(|s| s.transport.is_closed())
    }

    /// Picks the target shard for one of `g`'s lease blocks under the
    /// routing policy, skipping evicted and draining seats. `None` when no
    /// routable member remains. (Member ids can briefly outrun an older
    /// seat snapshot while a join is in flight — such members are skipped
    /// until the submitter sees the new seat.)
    fn pick_shard(&self, g: &mut GroupState, shards: &[Arc<ShardSlot>]) -> Option<usize> {
        match self.inner.policy.route {
            RoutePolicy::RoundRobin => {
                let n = g.members.len();
                for step in 0..n {
                    let c = (g.rr + step) % n;
                    let s = g.members[c];
                    if shards.get(s).is_some_and(|slot| slot.routable()) {
                        g.rr = (c + 1) % n;
                        return Some(s);
                    }
                }
                None
            }
            RoutePolicy::LeastQueueDepth => {
                let mut best = None;
                let mut best_depth = u64::MAX;
                for &s in &g.members {
                    let Some(slot) = shards.get(s) else { continue };
                    if !slot.routable() {
                        continue;
                    }
                    let depth = slot.transport.in_flight();
                    if depth < best_depth {
                        best = Some(s);
                        best_depth = depth;
                    }
                }
                best
            }
        }
    }

    /// Claims group `gid`'s next global stream index (and the shard its
    /// lease routes to), allocating a fresh lease when the active one is
    /// exhausted — or when its shard has been evicted or entered a
    /// maintenance drain since the block was routed, in which case the
    /// unstamped remainder is first retired back to the allocator so those
    /// coordinates re-route instead of vanishing. When a fresh lease was
    /// allocated it is also returned, so the caller can grant it to the
    /// transport **outside** the router lock — a remote grant is a socket
    /// write, and a backpressured shard must never stall ingress to the
    /// others.
    ///
    /// The claimed seat's [`ShardSlot::submitting`] window is opened
    /// before the lock is released; the caller owns a [`SubmitPermit`]
    /// closing it once the request has been forwarded.
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] when no routable member of the group
    /// remains to route to.
    fn claim(
        &self,
        st: &mut RouterState,
        gid: usize,
        shards: &[Arc<ShardSlot>],
    ) -> Result<(usize, u64, Option<IndexLease>), ServeError> {
        let g = &mut st.groups[gid];
        let mut granted = None;
        loop {
            if let Some(active) = g.active.as_mut() {
                if shards.get(active.shard).is_some_and(|s| s.routable()) {
                    if active.used < active.lease.len {
                        let index = active.lease.start + active.used;
                        active.used += 1;
                        g.stamped += 1;
                        shards[active.shard]
                            .submitting
                            .fetch_add(1, Ordering::SeqCst);
                        return Ok((active.shard, index, granted));
                    }
                    g.active = None;
                } else {
                    let active = g.active.take().expect("checked Some above");
                    g.alloc.reclaim(IndexLease::new(
                        active.lease.start + active.used,
                        active.lease.len - active.used,
                    ));
                }
            }
            let shard = self.pick_shard(g, shards).ok_or(ServeError::ShutDown)?;
            let lease = g.alloc.alloc(self.inner.policy.lease_len);
            granted = Some(lease);
            g.active = Some(ActiveLease {
                lease,
                used: 0,
                shard,
            });
        }
    }

    /// Returns a claimed-but-unsubmitted index (the shard refused the
    /// request) so the stream has no hole — the next claim re-issues it
    /// and subsequent successful requests keep their solo-identical
    /// coordinates. In the common case the index is the active lease's
    /// most recent stamp: the whole lease remainder is retired back to the
    /// allocator, so the re-issue also **re-routes** under the policy
    /// instead of re-hitting the refusing shard. Otherwise (a concurrent
    /// submitter advanced the stream past it) the single index re-enters
    /// the free list.
    fn unclaim(&self, gid: usize, shard: usize, index: u64) {
        let mut st = self.inner.state.lock().unwrap();
        self.unclaim_locked(&mut st, gid, shard, index);
    }

    /// [`FleetHandle::unclaim`] with the router lock already held (the
    /// block-submission path rolls back mid-claim).
    fn unclaim_locked(&self, st: &mut RouterState, gid: usize, shard: usize, index: u64) {
        let g = &mut st.groups[gid];
        g.stamped -= 1;
        let newest_of_active = matches!(
            g.active,
            Some(a) if a.shard == shard && a.used > 0 && a.lease.start + a.used - 1 == index
        );
        if newest_of_active {
            let mut active = g.active.take().expect("matched Some above");
            active.used -= 1;
            g.alloc.reclaim(IndexLease::new(
                active.lease.start + active.used,
                active.lease.len - active.used,
            ));
        } else {
            g.alloc.reclaim(IndexLease::new(index, 1));
        }
    }

    /// Marks shard `idx` evicted, reclaiming the unstamped remainder of
    /// its active lease so those coordinates are re-issued (and re-routed)
    /// before any fresh index — eviction never shifts a surviving
    /// coordinate. Returns `false` when the seat was already retired (a
    /// concurrent caller owns the rescue).
    fn retire_slot(&self, shards: &[Arc<ShardSlot>], idx: usize) -> bool {
        if shards[idx].evicted.swap(true, Ordering::AcqRel) {
            return false;
        }
        let mut st = self.inner.state.lock().unwrap();
        let g = &mut st.groups[shards[idx].group];
        if let Some(active) = g.active {
            if active.shard == idx {
                g.active = None;
                g.alloc.reclaim(IndexLease::new(
                    active.lease.start + active.used,
                    active.lease.len - active.used,
                ));
            }
        }
        true
    }

    /// Retires shard `idx` and re-routes every request stranded on it
    /// (see [`FleetHandle::rescue`]). No-op when a concurrent caller
    /// already retired the seat — orphans are harvested exactly once.
    fn evict_and_rescue(&self, shards: &[Arc<ShardSlot>], idx: usize) {
        if !self.retire_slot(shards, idx) {
            return;
        }
        self.rescue(
            shards,
            shards[idx].group,
            shards[idx].transport.take_orphans(),
        );
    }

    /// Re-submits harvested orphans **at their original coordinates** on
    /// surviving members of their model group, bridging each survivor's
    /// completion back into the orphan's original slot — so the caller's
    /// `Pending` resolves with the logits of the same stream index, and
    /// churn never shifts a coordinate. Only same-group members qualify:
    /// another group's replicas hold different conductances and would
    /// compute different bits. A survivor that refuses mid-rescue is
    /// itself retired (its strays join the worklist); with no survivor
    /// left the orphans are cancelled — the terminal outcome the
    /// settlement guarantee requires.
    fn rescue(&self, shards: &[Arc<ShardSlot>], gid: usize, orphans: Vec<Orphan>) {
        let mut work = orphans;
        'orphans: while let Some(orphan) = work.pop() {
            loop {
                let target = shards
                    .iter()
                    .enumerate()
                    .find(|(_, s)| s.group == gid && s.routable() && !s.transport.is_closed());
                let Some((i, survivor)) = target else {
                    orphan.slot.fulfill(Err(ServeError::Canceled));
                    continue 'orphans;
                };
                // Open the submit window, then re-check the draining flag:
                // either a concurrent maintenance drain sees our window and
                // waits for it, or we see its flag and pick another target
                // — a rescued request can never land on mid-calibration
                // conductances.
                survivor.submitting.fetch_add(1, Ordering::SeqCst);
                if survivor.draining.load(Ordering::SeqCst) {
                    survivor.submitting.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                let sent = survivor.transport.submit_admitted(
                    orphan.index,
                    orphan.image.clone(),
                    orphan.class,
                );
                survivor.submitting.fetch_sub(1, Ordering::SeqCst);
                match sent {
                    Ok(p) => {
                        let slot = orphan.slot;
                        let bridge = std::thread::Builder::new()
                            .name("aimc-fleet-rescue".into())
                            .spawn(move || slot.fulfill(p.wait()))
                            .expect("spawn rescue bridge");
                        self.inner.rescues.lock().unwrap().push(bridge);
                    }
                    Err(_) => {
                        if self.retire_slot(shards, i) {
                            work.extend(shards[i].transport.take_orphans());
                        }
                        work.push(orphan);
                    }
                }
                continue 'orphans;
            }
        }
    }

    /// Harvests and re-routes requests stranded on shards that died
    /// without a submission noticing (the failure path that usually
    /// triggers eviction) — drain and shutdown call this so no accepted
    /// request is left un-terminal. Orphans imply the link is permanently
    /// dead, so a stranding shard is also retired. Returns whether any
    /// orphan was harvested — callers loop until a pass comes up empty,
    /// because a transport may park orphans *while* it is being drained
    /// (its reconnect budget exhausting mid-quiesce).
    fn sweep_strays(&self, shards: &[Arc<ShardSlot>]) -> bool {
        let mut swept = false;
        for (i, s) in shards.iter().enumerate() {
            let strays = s.transport.take_orphans();
            if strays.is_empty() {
                continue;
            }
            swept = true;
            self.retire_slot(shards, i);
            self.rescue(shards, s.group, strays);
        }
        swept
    }

    /// Joins the rescue bridge threads, so every rescued request has
    /// settled into its caller's slot.
    fn join_rescues(&self) {
        let bridges: Vec<JoinHandle<()>> = std::mem::take(&mut *self.inner.rescues.lock().unwrap());
        for b in bridges {
            let _ = b.join();
        }
    }

    /// Submits one image to the fleet: claims the next global stream index
    /// from the active lease (allocating and routing a fresh lease if
    /// needed) and forwards the stamped request to the lease's shard.
    /// Blocks only on that shard's backpressure.
    ///
    /// A shard that refuses because its link died is **evicted**: its
    /// index is released, its stranded requests are rescued onto
    /// survivors, and the submission retries on another shard — so one
    /// dead replica costs retransmission, not errors.
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] after [`FleetHandle::shutdown`] — or once
    /// no live shard remains. A refused request's index is always released
    /// back to the allocator, so the stream keeps no hole and later
    /// requests stay solo-identical.
    pub fn submit(&self, image: Tensor) -> Result<Pending, ServeError> {
        self.submit_routed(0, image)
    }

    /// [`FleetHandle::submit`] addressed to a model id: the request joins
    /// **that model's** global stream and runs on a member of its shard
    /// group — never on another model's replicas.
    ///
    /// # Errors
    /// [`ServeError::UnknownModel`] when no group serves `model_id`;
    /// otherwise as [`FleetHandle::submit`].
    pub fn submit_to(&self, model_id: &str, image: Tensor) -> Result<Pending, ServeError> {
        self.submit_routed(self.resolve_model(model_id)?, image)
    }

    /// Resolves a model id to its group index in the registry.
    fn resolve_model(&self, model_id: &str) -> Result<usize, ServeError> {
        self.inner
            .state
            .lock()
            .unwrap()
            .groups
            .iter()
            .position(|g| g.spec.model_id == model_id)
            .ok_or_else(|| ServeError::UnknownModel(model_id.to_string()))
    }

    fn submit_routed(&self, gid: usize, image: Tensor) -> Result<Pending, ServeError> {
        loop {
            let shards = self.shards_snapshot();
            let (shard, index, granted) = {
                let mut st = self.inner.state.lock().unwrap();
                self.claim(&mut st, gid, &shards)?
            };
            let _permit = SubmitPermit(&shards[shard]);
            if let Some(lease) = granted {
                shards[shard].transport.grant_lease(lease);
            }
            match shards[shard].transport.submit_indexed(index, image.clone()) {
                Ok(p) => return Ok(p),
                Err(e) => {
                    self.unclaim(gid, shard, index);
                    if shards[shard].transport.is_closed() && !self.fleet_is_dead(&shards) {
                        self.evict_and_rescue(&shards, shard);
                        continue;
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Records one router-decided shed in the fleet-ingress ledger.
    fn note_shed(&self, class: QosClass, reason: ShedReason) {
        self.inner
            .qos
            .lock()
            .unwrap()
            .class_mut(class.priority)
            .note_shed(reason);
    }

    /// QoS-aware submission: the typed replacement for [`FleetHandle::submit`]
    /// under load. The request claims the next global stream index, then
    /// passes the fleet-ingress admission checks in order:
    ///
    /// 1. **Pacer** — the chosen shard's congestion window
    ///    ([`AimdPacer`], fed by the shard's pressure mark on every probe).
    ///    A closed window sheds with [`ShedReason::Overload`] —
    ///    [`Priority::High`] requests bypass the window (but never the
    ///    hard in-flight cap), so pacing throttles best-effort traffic
    ///    first.
    /// 2. **Fleet class budget** — the class's fleet-wide in-flight count
    ///    against [`FleetPolicy::class_budgets`]; over budget sheds with
    ///    [`ShedReason::ClassBudget`].
    /// 3. **Shard admission** — [`ShardTransport::submit_qos`]: the
    ///    shard's own queue bound, class budgets, and deadline
    ///    feasibility.
    ///
    /// Every shed synchronously releases the claimed index back to the
    /// allocator (the PR 5 refused-submission discipline), so admitted
    /// requests always occupy the contiguous prefix `0, 1, 2, …` and stay
    /// bit-identical to a solo run — shedding changes **which** requests
    /// run, never **what** an admitted request computes. A shard whose
    /// link died is evicted and the submission retries, exactly as in
    /// [`FleetHandle::submit`].
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] after [`FleetHandle::shutdown`] or once no
    /// live shard remains (the index is released, as for `submit`).
    pub fn submit_qos(&self, image: Tensor, class: QosClass) -> Result<Admission, ServeError> {
        self.submit_qos_routed(0, image, class)
    }

    /// [`FleetHandle::submit_qos`] addressed to a model id — the same
    /// admission pipeline over **that model's** stream and shard group.
    /// The pacer and fleet class budgets stay fleet-wide: overload is a
    /// host-resource property, not a per-model one.
    ///
    /// # Errors
    /// [`ServeError::UnknownModel`] when no group serves `model_id`;
    /// otherwise as [`FleetHandle::submit_qos`].
    pub fn submit_qos_to(
        &self,
        model_id: &str,
        image: Tensor,
        class: QosClass,
    ) -> Result<Admission, ServeError> {
        self.submit_qos_routed(self.resolve_model(model_id)?, image, class)
    }

    fn submit_qos_routed(
        &self,
        gid: usize,
        image: Tensor,
        class: QosClass,
    ) -> Result<Admission, ServeError> {
        loop {
            let shards = self.shards_snapshot();
            let (shard, index, granted) = {
                let mut st = self.inner.state.lock().unwrap();
                self.claim(&mut st, gid, &shards)?
            };
            let slot = &shards[shard];
            let _permit = SubmitPermit(slot);
            if let Some(lease) = granted {
                slot.transport.grant_lease(lease);
            }
            // Probe the shard's congestion signal and drive its pacer
            // before committing the request.
            let load = slot.transport.load();
            let in_flight = usize::try_from(load.in_flight).unwrap_or(usize::MAX);
            let pacer_cfg = self.inner.policy.pacer;
            let window = {
                let mut pacer = slot.pacer.lock().unwrap();
                pacer.observe(load.pressure, self.inner.epoch.elapsed());
                pacer.window()
            };
            if load.pressure {
                self.inner.qos.lock().unwrap().ecn_marks += 1;
            }
            let over_hard_limit = in_flight >= pacer_cfg.hard_limit;
            let over_window = pacer_cfg.enabled && in_flight >= window;
            if over_hard_limit || (over_window && class.priority != Priority::High) {
                self.unclaim(gid, shard, index);
                self.note_shed(class, ShedReason::Overload);
                return Ok(Admission::Shed(ShedReason::Overload));
            }
            let budget = self.inner.policy.class_budgets[class.priority.rank()];
            if budget != usize::MAX {
                let mut class_in_flight = load.per_class[class.priority.rank()];
                for (i, s) in shards.iter().enumerate() {
                    if i != shard && s.live() {
                        class_in_flight += s.transport.load().per_class[class.priority.rank()];
                    }
                }
                if class_in_flight >= budget as u64 {
                    self.unclaim(gid, shard, index);
                    self.note_shed(class, ShedReason::ClassBudget);
                    return Ok(Admission::Shed(ShedReason::ClassBudget));
                }
            }
            match slot.transport.submit_qos(index, image.clone(), class) {
                Ok(Admission::Admitted(p)) => return Ok(Admission::Admitted(p)),
                Ok(refused) => {
                    // The shard shed (and counted it in its own ledger):
                    // release the index so the stream keeps no hole.
                    self.unclaim(gid, shard, index);
                    return Ok(refused);
                }
                Err(e) => {
                    self.unclaim(gid, shard, index);
                    if slot.transport.is_closed() && !self.fleet_is_dead(&shards) {
                        self.evict_and_rescue(&shards, shard);
                        continue;
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Submits a run of images stamped with **contiguous** global indices,
    /// claimed atomically — the fleet counterpart of
    /// `ServeHandle::submit_many`. Routing still happens at lease
    /// granularity: a run longer than the remaining lease spans leases
    /// (and possibly shards), but its indices — and therefore its results
    /// — are exactly the ones a loop of [`FleetHandle::submit`] calls
    /// would produce.
    ///
    /// A shard dying mid-run is evicted like in [`FleetHandle::submit`]:
    /// the failed and unsent indices are released, the dead shard's
    /// strays are rescued, and the remainder of the run re-claims — so
    /// the block still completes with contiguous coordinates.
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] after [`FleetHandle::shutdown`] or once no
    /// live shard remains (images already forwarded still complete, but
    /// their completion handles are discarded with the error); the failed
    /// and unsent images' indices are released back to the allocator.
    pub fn submit_block(
        &self,
        images: impl IntoIterator<Item = Tensor>,
    ) -> Result<Vec<Pending>, ServeError> {
        let gid = 0;
        let mut images: Vec<Tensor> = images.into_iter().collect();
        let mut pendings = Vec::with_capacity(images.len());
        'retry: loop {
            if images.is_empty() {
                return Ok(pendings);
            }
            let shards = self.shards_snapshot();
            let routes: Vec<(usize, u64, Option<IndexLease>)> = {
                let mut st = self.inner.state.lock().unwrap();
                let mut routes = Vec::with_capacity(images.len());
                for _ in &images {
                    match self.claim(&mut st, gid, &shards) {
                        Ok(r) => routes.push(r),
                        Err(e) => {
                            // No live shard: roll the whole batch back,
                            // newest first so lease-cursor rollbacks
                            // compose.
                            for &(shard, index, _) in routes.iter().rev() {
                                shards[shard].submitting.fetch_sub(1, Ordering::SeqCst);
                                self.unclaim_locked(&mut st, gid, shard, index);
                            }
                            return Err(e);
                        }
                    }
                }
                routes
            };
            let _permits: Vec<SubmitPermit<'_>> = routes
                .iter()
                .map(|&(shard, _, _)| SubmitPermit(&shards[shard]))
                .collect();
            for (i, &(shard, index, granted)) in routes.iter().enumerate() {
                if let Some(lease) = granted {
                    shards[shard].transport.grant_lease(lease);
                }
                match shards[shard]
                    .transport
                    .submit_indexed(index, images[i].clone())
                {
                    Ok(p) => pendings.push(p),
                    Err(e) => {
                        // Release the failed index and the whole unsent
                        // tail, newest first.
                        for &(shard, index, _) in routes[i..].iter().rev() {
                            self.unclaim(gid, shard, index);
                        }
                        if shards[shard].transport.is_closed() && !self.fleet_is_dead(&shards) {
                            self.evict_and_rescue(&shards, shard);
                            images.drain(..i);
                            continue 'retry;
                        }
                        return Err(e);
                    }
                }
            }
            return Ok(pendings);
        }
    }

    /// Blocks until every accepted request on every shard has reached a
    /// terminal outcome — including requests stranded on dead shards,
    /// which are rescued onto survivors first — then reclaims the active
    /// lease's unused indices so they are re-issued (and re-routed) before
    /// any fresh index.
    pub fn drain(&self) {
        let shards = self.shards_snapshot();
        // Loop: a transport can park orphans *during* its drain (reconnect
        // budget exhausting mid-quiesce), and a rescue re-submission lands
        // new work on a survivor — so sweep and re-drain until a full pass
        // harvests nothing. Terminates: every harvesting pass retires at
        // least one shard.
        loop {
            self.sweep_strays(&shards);
            for s in &shards {
                s.transport.drain();
            }
            self.join_rescues();
            if !self.sweep_strays(&shards) {
                break;
            }
        }
        let mut st = self.inner.state.lock().unwrap();
        for g in &mut st.groups {
            if let Some(active) = g.active.take() {
                g.alloc.reclaim(IndexLease::new(
                    active.lease.start + active.used,
                    active.lease.len - active.used,
                ));
            }
        }
    }

    /// Stops accepting requests fleet-wide, drains everything accepted,
    /// and releases every shard. Requests stranded on dead shards are
    /// rescued onto survivors first, so they settle (rather than cancel)
    /// whenever a survivor exists. Idempotent; safe from any clone.
    pub fn shutdown(&self) {
        let shards = self.shards_snapshot();
        // First sweep runs while survivors are still open, so strays are
        // rescued rather than cancelled; later passes (orphans parked
        // during a shard's own shutdown) find everything closed and
        // cancel, which is the correct post-shutdown outcome. Shutdown is
        // idempotent per transport, so re-issuing it each pass is safe.
        loop {
            self.sweep_strays(&shards);
            for s in &shards {
                s.transport.shutdown();
            }
            self.join_rescues();
            if !self.sweep_strays(&shards) {
                break;
            }
        }
    }

    /// Whether [`FleetHandle::shutdown`] has run.
    pub fn is_closed(&self) -> bool {
        self.shards_snapshot()
            .iter()
            .all(|s| s.transport.is_closed())
    }

    /// Applies conductance drift to **every** live replica at the same
    /// stream position: the fleet is drained first (all accepted requests
    /// finish on pre-drift conductances), then each shard drifts. Returns
    /// whether the replicas model drift (`false` for a golden fleet, which
    /// ignores the call).
    ///
    /// Identical replicas drifted identically stay identical — so the
    /// fleet keeps matching a solo session taken through the same
    /// transition at the same stream position. The transition is also
    /// recorded in the drift log, so a later [`FleetHandle::add_shard`]
    /// replays it onto the joiner.
    pub fn apply_drift(&self, t_hours: f64) -> bool {
        let _ops = self.inner.ops.lock().unwrap();
        self.drain();
        let shards = self.shards_snapshot();
        let mut modeled = false;
        for s in shards.iter().filter(|s| s.live()) {
            modeled |= s.transport.apply_drift(t_hours);
            s.drift_age.fetch_add(1, Ordering::SeqCst);
        }
        self.inner.state.lock().unwrap().drift_log.push(t_hours);
        modeled
    }

    /// Reprograms **every** live replica from the original seed and
    /// rewinds the global stream to zero, after draining the fleet — the
    /// exact semantics of a solo `Session::reprogram`: freshly written
    /// conductances, coordinates replayed from the start. The drift log is
    /// cleared: a joiner added after a reprogram starts from the same
    /// fresh conductances as everyone else.
    ///
    /// The drain also reclaims the active lease, so no outstanding lease
    /// survives the rewind: the next submission claims a fresh lease
    /// starting at index 0.
    ///
    /// # Errors
    /// [`ServeError::Exec`] / [`ServeError::Remote`] if any shard fails to
    /// re-program (shards already re-programmed keep their fresh state;
    /// the stream is only rewound on full success).
    pub fn reprogram(&self) -> Result<(), ServeError> {
        let _ops = self.inner.ops.lock().unwrap();
        self.drain();
        let shards = self.shards_snapshot();
        for s in shards.iter().filter(|s| s.live()) {
            s.transport.reprogram()?;
            s.drift_age.store(0, Ordering::SeqCst);
        }
        let mut st = self.inner.state.lock().unwrap();
        for g in &mut st.groups {
            g.alloc.rewind();
            g.active = None;
            g.stamped = 0;
        }
        st.drift_log.clear();
        Ok(())
    }

    /// Updates the thread budget fleet-wide; in-flight shards pick it up
    /// per dispatched batch. Never changes a logit.
    pub fn set_parallelism(&self, par: Parallelism) {
        for s in self.shards_snapshot().iter().filter(|s| s.live()) {
            s.transport.set_parallelism(par);
        }
    }

    /// Adds a freshly connected shard to a running fleet — the **live
    /// join** path of elastic serving. The joiner's replica is programmed
    /// from the fleet seed via the transport's control surface, the drift
    /// history recorded since the last reprogram is replayed so its
    /// conductances match the incumbents' bit-for-bit, and the shard then
    /// enters the routing rotation, where it is granted fresh leases like
    /// any other seat.
    ///
    /// Joining never shifts a coordinate: the joiner only serves indices
    /// from leases routed after it joined, and identical programming plus
    /// identical drift history keeps its logits bit-identical to every
    /// other replica — the fleet invariance is preserved across elastic
    /// scale-up.
    ///
    /// The joiner is registered into the model group of its
    /// [`ShardSpec`]'s model id — an unknown id founds a new group with
    /// its own stream. Re-joining a model whose previous replica was
    /// evicted goes through this same path: fresh programming from the
    /// spec seed plus the drift-log replay reproduce the incumbents'
    /// conductances exactly, so the rejoined host serves bit-identical
    /// logits.
    ///
    /// # Errors
    /// [`ServeError::ShutDown`] if the fleet is closed;
    /// [`ServeError::SpecMismatch`] if the joiner claims an existing model
    /// id with a different device recipe; any programming error from the
    /// joiner's control surface (the shard is not added).
    pub fn add_shard(&self, transport: Box<dyn ShardTransport>) -> Result<(), ServeError> {
        let _ops = self.inner.ops.lock().unwrap();
        if self.is_closed() {
            return Err(ServeError::ShutDown);
        }
        let spec = transport.spec();
        {
            let st = self.inner.state.lock().unwrap();
            if let Some(g) = st.groups.iter().find(|g| g.spec.model_id == spec.model_id) {
                if g.spec != spec {
                    return Err(ServeError::SpecMismatch(spec.model_id));
                }
            }
        }
        transport.reprogram()?;
        let drift_log = self.inner.state.lock().unwrap().drift_log.clone();
        for t_hours in drift_log {
            transport.apply_drift(t_hours);
        }
        let mut shards = self.inner.shards.write().unwrap();
        let mut st = self.inner.state.lock().unwrap();
        let gid = match st
            .groups
            .iter()
            .position(|g| g.spec.model_id == spec.model_id)
        {
            Some(gid) => gid,
            None => {
                st.groups.push(GroupState::new(spec));
                st.groups.len() - 1
            }
        };
        let idx = shards.len();
        shards.push(ShardSlot::new(transport, self.inner.policy.pacer, gid));
        st.groups[gid].members.push(idx);
        Ok(())
    }

    /// Blocks until every submission already claimed for `slot` has been
    /// forwarded to its transport. Callers set the seat draining first
    /// (under the router lock), so no new claim can extend the wait — the
    /// window is a few instructions plus one transport call.
    fn wait_submits(&self, slot: &ShardSlot) {
        while slot.submitting.load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
    }

    /// Counts the seats of `slot.group` (excluding seat `idx` itself) that
    /// could serve a request right now — the live-floor guard for
    /// maintenance operations.
    fn routable_peers(&self, shards: &[Arc<ShardSlot>], idx: usize) -> usize {
        shards
            .iter()
            .enumerate()
            .filter(|(i, s)| *i != idx && s.group == shards[idx].group && s.routable())
            .count()
    }

    /// Gracefully decommissions seat `idx`: the seat leaves the routing
    /// rotation, the unstamped remainder of its active lease returns to
    /// its group's allocator (those coordinates re-route, never skip),
    /// in-flight work finishes on the shard, and the transport is shut
    /// down — no request is cancelled, no coordinate shifts, no logit
    /// changes. The counterpart of [`FleetHandle::add_shard`] for elastic
    /// scale-down.
    ///
    /// Removing an already-retired seat is a no-op (`Ok`): the seat is
    /// already out of rotation, which is what removal asks for.
    ///
    /// # Errors
    /// [`ServeError::UnknownShard`] for an id no seat ever held;
    /// [`ServeError::LiveFloor`] when the seat is its model group's last
    /// routable member — removal would strand the group's stream (shut the
    /// fleet down instead).
    pub fn remove_shard(&self, idx: usize) -> Result<(), ServeError> {
        let _ops = self.inner.ops.lock().unwrap();
        let shards = self.shards_snapshot();
        if idx >= shards.len() {
            return Err(ServeError::UnknownShard(idx));
        }
        let slot = &shards[idx];
        if !slot.live() {
            return Ok(());
        }
        if self.routable_peers(&shards, idx) == 0 {
            return Err(ServeError::LiveFloor);
        }
        self.quiesce_slot(&shards, idx);
        slot.evicted.store(true, Ordering::SeqCst);
        slot.draining.store(false, Ordering::SeqCst);
        slot.transport.shutdown();
        // A link that died mid-drain may still have parked strays — rescue
        // them onto the group's survivors so the guarantee holds even for
        // an unhealthy seat being removed.
        let strays = slot.transport.take_orphans();
        if !strays.is_empty() {
            self.rescue(&shards, slot.group, strays);
        }
        Ok(())
    }

    /// Takes seat `idx` out of rotation and waits until it is fully quiet:
    /// sets the draining flag and reclaims its active-lease remainder
    /// under the router lock, waits out claims already in flight, then
    /// drains the transport.
    fn quiesce_slot(&self, shards: &[Arc<ShardSlot>], idx: usize) {
        let slot = &shards[idx];
        {
            let mut st = self.inner.state.lock().unwrap();
            slot.draining.store(true, Ordering::SeqCst);
            let g = &mut st.groups[slot.group];
            if let Some(active) = g.active {
                if active.shard == idx {
                    g.active = None;
                    g.alloc.reclaim(IndexLease::new(
                        active.lease.start + active.used,
                        active.lease.len - active.used,
                    ));
                }
            }
        }
        self.wait_submits(slot);
        slot.transport.drain();
    }

    /// Recalibrates seat `idx` in the background: the seat drains (its
    /// group's other members keep serving), its replica is reprogrammed
    /// from the spec seed, the fleet's drift history is replayed so its
    /// conductances match the incumbents' bit-for-bit, and the seat
    /// returns to rotation with its drift age reset — **no completed or
    /// concurrent logit changes**, because every request carries its
    /// global coordinate and the recalibrated replica computes the same
    /// bits at every coordinate as any incumbent.
    ///
    /// This is the rotation step [`RecalHandle`] schedules; call it
    /// directly for one-shot manual recalibration.
    ///
    /// [`RecalHandle`]: crate::RecalHandle
    ///
    /// # Errors
    /// [`ServeError::UnknownShard`] for an id no seat ever held;
    /// [`ServeError::ShutDown`] if the seat was evicted; [`ServeError::LiveFloor`]
    /// when the seat is its group's last routable member (recalibrating it
    /// would leave the model unservable for the duration); any
    /// re-programming error (the seat is then retired and its strays
    /// rescued — a replica that cannot re-program is unusable).
    pub fn recalibrate_shard(&self, idx: usize) -> Result<(), ServeError> {
        let _ops = self.inner.ops.lock().unwrap();
        let shards = self.shards_snapshot();
        if idx >= shards.len() {
            return Err(ServeError::UnknownShard(idx));
        }
        let slot = &shards[idx];
        if !slot.live() {
            return Err(ServeError::ShutDown);
        }
        if self.routable_peers(&shards, idx) == 0 {
            return Err(ServeError::LiveFloor);
        }
        self.quiesce_slot(&shards, idx);
        if let Err(e) = slot.transport.reprogram() {
            slot.draining.store(false, Ordering::SeqCst);
            self.evict_and_rescue(&shards, idx);
            return Err(e);
        }
        let drift_log = self.inner.state.lock().unwrap().drift_log.clone();
        for t_hours in drift_log {
            slot.transport.apply_drift(t_hours);
        }
        slot.drift_age.store(0, Ordering::SeqCst);
        slot.recals.fetch_add(1, Ordering::SeqCst);
        slot.draining.store(false, Ordering::SeqCst);
        Ok(())
    }

    /// Number of shard seats behind the router, evicted ones included
    /// (seats are append-only, so this is also the next joiner's id).
    pub fn shard_count(&self) -> usize {
        self.inner.shards.read().unwrap().len()
    }

    /// Number of shards still in the routing rotation (not evicted).
    pub fn live_shard_count(&self) -> usize {
        self.inner
            .shards
            .read()
            .unwrap()
            .iter()
            .filter(|s| s.live())
            .count()
    }

    /// Requests stamped with global stream indices since the last
    /// reprogram rewind, summed across every model group.
    pub fn images_routed(&self) -> u64 {
        self.inner
            .state
            .lock()
            .unwrap()
            .groups
            .iter()
            .map(|g| g.stamped)
            .sum()
    }

    /// Requests stamped on one model's stream since the last reprogram
    /// rewind.
    ///
    /// # Errors
    /// [`ServeError::UnknownModel`] when no group serves `model_id`.
    pub fn images_routed_for(&self, model_id: &str) -> Result<u64, ServeError> {
        let gid = self.resolve_model(model_id)?;
        Ok(self.inner.state.lock().unwrap().groups[gid].stamped)
    }

    /// The registered model ids, in group order (group 0 first — the
    /// target of the un-addressed submission API).
    pub fn model_ids(&self) -> Vec<String> {
        self.inner
            .state
            .lock()
            .unwrap()
            .groups
            .iter()
            .map(|g| g.spec.model_id.clone())
            .collect()
    }

    /// The router's per-seat health view: group membership, availability,
    /// drift age, and recalibration count — the input the background
    /// recalibration scheduler plans from.
    pub fn shard_health(&self) -> Vec<ShardHealth> {
        self.shard_health_of(&self.shards_snapshot())
    }

    fn shard_health_of(&self, shards: &[Arc<ShardSlot>]) -> Vec<ShardHealth> {
        let st = self.inner.state.lock().unwrap();
        shards
            .iter()
            .map(|s| ShardHealth {
                model_id: st.groups[s.group].spec.model_id.clone(),
                group: s.group,
                live: s.live(),
                draining: s.draining.load(Ordering::SeqCst),
                drift_age: s.drift_age.load(Ordering::SeqCst),
                recals: s.recals.load(Ordering::SeqCst),
            })
            .collect()
    }

    /// The routing policy this fleet was assembled with.
    pub fn route_policy(&self) -> RoutePolicy {
        self.inner.policy.route
    }

    /// The fleet's lease length (global indices claimed and routed per
    /// block).
    pub fn lease_len(&self) -> u64 {
        self.inner.policy.lease_len.max(1)
    }

    /// Point-in-time statistics, per shard and aggregatable.
    pub fn stats(&self) -> FleetStats {
        let shards = self.shards_snapshot();
        let health = self.shard_health_of(&shards);
        FleetStats {
            shards: shards
                .iter()
                .map(|s| {
                    let mut stats = s.transport.stats();
                    // The router's drift-age view supersedes the
                    // transport's own count: it is reset by background
                    // recalibration (whose drift-log replay the transport
                    // counts as fresh drift) and uniform across local and
                    // remote seats.
                    stats.drift_age = s.drift_age.load(Ordering::SeqCst);
                    stats
                })
                .collect(),
            router: self.inner.qos.lock().unwrap().clone(),
            health,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::pending_pair;
    use crate::transport::{LocalTransport, ShardControl};
    use crate::{spawn, BatchPolicy};
    use aimc_dnn::{ExecError, Shape};
    use std::time::Duration;

    fn tensor(v: f32) -> Tensor {
        Tensor::from_vec(Shape::new(1, 1, 1), vec![v])
    }

    /// Records (index, tag) pairs a shard's runner saw; echoes index+tag so
    /// results encode the evaluating coordinate.
    type ShardLog = Arc<Mutex<Vec<(u64, f32)>>>;

    fn shard_handle(log: ShardLog, policy: BatchPolicy) -> crate::ServeHandle {
        spawn(policy, move |indices: &[u64], inputs: &[Tensor]| {
            let mut l = log.lock().unwrap();
            for (&idx, t) in indices.iter().zip(inputs) {
                l.push((idx, t.data()[0]));
            }
            Ok(indices
                .iter()
                .zip(inputs)
                .map(|(&idx, t)| tensor(idx as f32 * 1000.0 + t.data()[0]))
                .collect())
        })
    }

    /// A control that records calls instead of owning an executor.
    #[derive(Default)]
    struct RecordingControl {
        drifts: Mutex<Vec<f64>>,
        reprograms: Mutex<u32>,
        pars: Mutex<Vec<Parallelism>>,
    }

    struct ControlHandle(Arc<RecordingControl>);

    impl ShardControl for ControlHandle {
        fn apply_drift(&self, t_hours: f64) -> bool {
            self.0.drifts.lock().unwrap().push(t_hours);
            true
        }
        fn reprogram(&self) -> Result<(), ExecError> {
            *self.0.reprograms.lock().unwrap() += 1;
            Ok(())
        }
        fn set_parallelism(&self, par: Parallelism) {
            self.0.pars.lock().unwrap().push(par);
        }
    }

    fn local_shard(log: &ShardLog, control: &Arc<RecordingControl>) -> Box<dyn ShardTransport> {
        Box::new(LocalTransport::new(
            shard_handle(
                Arc::clone(log),
                BatchPolicy::new(2, Duration::from_millis(1)),
            ),
            Box::new(ControlHandle(Arc::clone(control))),
        ))
    }

    fn fleet(n: usize, policy: FleetPolicy) -> (FleetHandle, Vec<ShardLog>, Arc<RecordingControl>) {
        let control = Arc::new(RecordingControl::default());
        let logs: Vec<ShardLog> = (0..n).map(|_| Arc::default()).collect();
        let shards: Vec<Box<dyn ShardTransport>> =
            logs.iter().map(|l| local_shard(l, &control)).collect();
        (FleetHandle::new(shards, policy).unwrap(), logs, control)
    }

    #[test]
    fn round_robin_spreads_evenly_and_indices_are_global() {
        let (f, logs, _) = fleet(3, FleetPolicy::new(RoutePolicy::RoundRobin));
        let pendings: Vec<Pending> = (0..9)
            .map(|i| f.submit(tensor(i as f32)).unwrap())
            .collect();
        // Result of request k encodes the coordinate it ran at: must be k.
        for (k, p) in pendings.into_iter().enumerate() {
            assert_eq!(p.wait().unwrap().data(), &[k as f32 * 1000.0 + k as f32]);
        }
        f.drain();
        assert_eq!(f.images_routed(), 9);
        assert_eq!(f.lease_len(), 1);
        // Even spread: single-threaded round-robin at lease 1 gives each
        // shard 3.
        let mut all: Vec<(u64, f32)> = Vec::new();
        for (s, log) in logs.iter().enumerate() {
            let l = log.lock().unwrap();
            assert_eq!(l.len(), 3, "shard {s} request count");
            // Shard s saw exactly global indices s, s+3, s+6.
            for (j, &(idx, tag)) in l.iter().enumerate() {
                assert_eq!(idx as usize, s + 3 * j);
                assert_eq!(tag, idx as f32);
            }
            all.extend_from_slice(&l);
        }
        // Every global index routed exactly once.
        let mut seen: Vec<u64> = all.iter().map(|&(i, _)| i).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..9).collect::<Vec<u64>>());
        f.shutdown();
        assert!(f.is_closed());
    }

    /// Lease blocks route whole: consecutive requests share the lease's
    /// shard, and the next lease moves on round-robin.
    #[test]
    fn leases_route_in_blocks() {
        let (f, logs, _) = fleet(
            2,
            FleetPolicy::new(RoutePolicy::RoundRobin).with_lease_len(3),
        );
        let pendings: Vec<Pending> = (0..8)
            .map(|i| f.submit(tensor(i as f32)).unwrap())
            .collect();
        for (k, p) in pendings.into_iter().enumerate() {
            assert_eq!(p.wait().unwrap().data(), &[k as f32 * 1000.0 + k as f32]);
        }
        f.drain();
        // Blocks of 3: [0,3) → shard 0, [3,6) → shard 1, [6,8) → shard 0.
        let l0: Vec<u64> = logs[0].lock().unwrap().iter().map(|&(i, _)| i).collect();
        let l1: Vec<u64> = logs[1].lock().unwrap().iter().map(|&(i, _)| i).collect();
        assert_eq!(l0, vec![0, 1, 2, 6, 7]);
        assert_eq!(l1, vec![3, 4, 5]);
        f.shutdown();
    }

    /// Drain reclaims the active lease's tail: the stream continues
    /// contiguously (no holes) and the reclaimed block is re-routed.
    #[test]
    fn drain_reclaims_partial_leases() {
        let (f, logs, _) = fleet(
            2,
            FleetPolicy::new(RoutePolicy::RoundRobin).with_lease_len(4),
        );
        // One request consumes index 0 of lease [0,4) on shard 0.
        f.submit(tensor(0.0)).unwrap().wait().unwrap();
        f.drain(); // reclaims [1,4)
        assert_eq!(f.images_routed(), 1);
        // The next requests re-issue the reclaimed block — on the *next*
        // round-robin shard — keeping the stream contiguous at 1, 2, …
        let pendings: Vec<Pending> = (1..5)
            .map(|i| f.submit(tensor(i as f32)).unwrap())
            .collect();
        for (k, p) in pendings.into_iter().enumerate() {
            let k = (k + 1) as f32;
            assert_eq!(p.wait().unwrap().data(), &[k * 1000.0 + k]);
        }
        f.drain();
        assert_eq!(f.images_routed(), 5);
        let l0: Vec<u64> = logs[0].lock().unwrap().iter().map(|&(i, _)| i).collect();
        let l1: Vec<u64> = logs[1].lock().unwrap().iter().map(|&(i, _)| i).collect();
        assert_eq!(l0, vec![0], "shard 0 stamped only the pre-drain request");
        assert_eq!(l1, vec![1, 2, 3, 4], "reclaimed block re-routed to shard 1");
        f.shutdown();
    }

    #[test]
    fn least_queue_depth_prefers_idle_shards() {
        let (f, logs, _) = fleet(2, FleetPolicy::new(RoutePolicy::LeastQueueDepth));
        // Submit and drain one at a time: both shards idle at each pick, so
        // ties route everything to shard 0 — and shard 1 stays empty.
        for i in 0..4 {
            let p = f.submit(tensor(i as f32)).unwrap();
            p.wait().unwrap();
            f.drain();
        }
        assert_eq!(logs[0].lock().unwrap().len(), 4);
        assert_eq!(logs[1].lock().unwrap().len(), 0);
        f.shutdown();
    }

    #[test]
    fn submit_block_spans_leases_with_contiguous_indices() {
        let (f, logs, _) = fleet(
            2,
            FleetPolicy::new(RoutePolicy::RoundRobin).with_lease_len(3),
        );
        let a = f.submit_block((0..3).map(|i| tensor(i as f32))).unwrap();
        let b = f.submit_block((3..5).map(|i| tensor(i as f32))).unwrap();
        assert_eq!(f.submit_block(std::iter::empty()).unwrap().len(), 0);
        for (k, p) in a.into_iter().chain(b).enumerate() {
            assert_eq!(p.wait().unwrap().data(), &[k as f32 * 1000.0 + k as f32]);
        }
        f.drain();
        // Lease-granular routing: [0,3) on shard 0, [3,6) on shard 1 — the
        // second block landed whole on the second lease.
        let l0 = logs[0].lock().unwrap().clone();
        let l1 = logs[1].lock().unwrap().clone();
        assert_eq!(l0, vec![(0, 0.0), (1, 1.0), (2, 2.0)]);
        assert_eq!(l1, vec![(3, 3.0), (4, 4.0)]);
        f.shutdown();
    }

    #[test]
    fn stats_aggregate_sums_the_fleet() {
        let (f, _, _) = fleet(3, FleetPolicy::default());
        let pendings: Vec<Pending> = (0..7)
            .map(|i| f.submit(tensor(i as f32)).unwrap())
            .collect();
        for p in pendings {
            p.wait().unwrap();
        }
        f.drain();
        let stats = f.stats();
        assert_eq!(stats.shards.len(), 3);
        let agg = stats.aggregate();
        assert_eq!(agg.submitted, 7);
        assert_eq!(agg.completed, 7);
        assert_eq!(agg.dispatched, 7);
        assert_eq!(agg.queue_waits.len(), 7);
        assert!(
            agg.batches >= 4,
            "7 requests at max_batch 2 need ≥4 batches"
        );
        assert!(agg.max_batch_observed <= 2);
        f.shutdown();
        // Post-shutdown submissions are refused by the routed-to shard —
        // not retried (the whole fleet is closed, so this is shutdown,
        // not churn) — and show up aggregated exactly once.
        assert!(matches!(f.submit(tensor(0.0)), Err(ServeError::ShutDown)));
        assert_eq!(f.stats().aggregate().rejected, 1);
    }

    /// Pins the aggregation semantics: fleet percentiles come from the
    /// **pooled samples**, not from averaging per-shard percentiles — a
    /// congested shard must dominate the fleet p95 in proportion to its
    /// traffic, not be averaged away by idle shards.
    #[test]
    fn aggregate_pools_samples_rather_than_averaging_percentiles() {
        let fast = ServeStats {
            submitted: 9,
            completed: 9,
            dispatched: 9,
            batches: 9,
            queue_waits: vec![Duration::from_millis(1); 9],
            ..ServeStats::default()
        };
        let slow = ServeStats {
            submitted: 91,
            completed: 91,
            dispatched: 91,
            batches: 91,
            queue_waits: vec![Duration::from_millis(100); 91],
            ..ServeStats::default()
        };
        let stats = FleetStats {
            shards: vec![fast.clone(), slow.clone()],
            router: QosStats::default(),
            health: Vec::new(),
        };
        let agg = stats.aggregate();
        assert_eq!(agg.queue_waits.len(), 100, "every sample is pooled");
        // 91% of requests waited 100 ms: the pooled p95 must say 100 ms.
        let p95 = agg.queue_wait_percentile(0.95).unwrap();
        assert_eq!(p95, Duration::from_millis(100));
        // The rejected alternative: averaging the per-shard p95s would
        // report ~50 ms and hide the congestion.
        let averaged = (fast.queue_wait_percentile(0.95).unwrap()
            + slow.queue_wait_percentile(0.95).unwrap())
            / 2;
        assert!(averaged < p95, "averaging would understate the fleet p95");
        // Counters sum exactly.
        assert_eq!(agg.submitted, 100);
        assert_eq!(agg.dispatched, 100);
        assert_eq!(agg.mean_batch(), 1.0);
    }

    #[test]
    fn drift_and_reprogram_fan_across_all_shards() {
        let (f, _, control) = fleet(3, FleetPolicy::default());
        let p = f.submit(tensor(1.0)).unwrap();
        assert!(f.apply_drift(24.0));
        // Drain-before-drift: the in-flight request completed first.
        assert!(p.is_ready());
        assert_eq!(*control.drifts.lock().unwrap(), vec![24.0, 24.0, 24.0]);

        let _ = f.submit(tensor(2.0)).unwrap();
        assert_eq!(f.images_routed(), 2);
        f.reprogram().unwrap();
        assert_eq!(*control.reprograms.lock().unwrap(), 3);
        assert_eq!(f.images_routed(), 0, "reprogram rewinds the global stream");
        // The next request replays coordinate 0.
        let p = f.submit(tensor(5.0)).unwrap();
        assert_eq!(p.wait().unwrap().data(), &[5.0]);

        f.set_parallelism(Parallelism::Threads(2));
        assert_eq!(control.pars.lock().unwrap().len(), 3);
        f.shutdown();
    }

    /// Reprogram with an outstanding (partially consumed) lease: the
    /// drain-reclaim quiesces it, the rewind restarts at 0, and the next
    /// lease is a fresh block from the start of the stream.
    #[test]
    fn reprogram_rewinds_with_outstanding_leases() {
        let (f, logs, _) = fleet(
            2,
            FleetPolicy::new(RoutePolicy::RoundRobin).with_lease_len(64),
        );
        // Consume 2 of the 64-index lease.
        for i in 0..2 {
            f.submit(tensor(i as f32)).unwrap().wait().unwrap();
        }
        assert_eq!(f.images_routed(), 2);
        f.reprogram().unwrap();
        assert_eq!(f.images_routed(), 0);
        // Replay: indices restart at 0 (fresh lease, next shard in the
        // rotation).
        let p = f.submit(tensor(9.0)).unwrap();
        assert_eq!(p.wait().unwrap().data(), &[9.0]);
        f.drain();
        let all: Vec<u64> = logs
            .iter()
            .flat_map(|l| {
                l.lock()
                    .unwrap()
                    .iter()
                    .map(|&(i, _)| i)
                    .collect::<Vec<_>>()
            })
            .collect();
        // Index 0 was stamped twice: once before, once after the rewind.
        assert_eq!(all.iter().filter(|&&i| i == 0).count(), 2);
        f.shutdown();
    }

    /// A transport that refuses every submission — a died remote link.
    struct RefusingTransport;

    impl ShardTransport for RefusingTransport {
        fn submit_indexed(&self, _index: u64, _image: Tensor) -> Result<Pending, ServeError> {
            Err(ServeError::ShutDown)
        }
        fn in_flight(&self) -> u64 {
            0
        }
        fn drain(&self) {}
        fn shutdown(&self) {}
        fn is_closed(&self) -> bool {
            true
        }
        fn stats(&self) -> ServeStats {
            ServeStats::default()
        }
        fn apply_drift(&self, _t_hours: f64) -> bool {
            false
        }
        fn reprogram(&self) -> Result<(), ServeError> {
            Ok(())
        }
        fn set_parallelism(&self, _par: Parallelism) {}
    }

    /// A dead shard is evicted on its first refusal and the submission
    /// retries on a survivor: the caller sees no error, the stream keeps
    /// no hole, and every coordinate stays exactly `0, 1, 2, …` — the
    /// invariance outlives a dead shard without costing a request.
    #[test]
    fn dead_shard_is_evicted_and_requests_reroute() {
        let log: ShardLog = Arc::default();
        let control = Arc::new(RecordingControl::default());
        let shards: Vec<Box<dyn ShardTransport>> =
            vec![local_shard(&log, &control), Box::new(RefusingTransport)];
        let f = FleetHandle::new(shards, FleetPolicy::new(RoutePolicy::RoundRobin)).unwrap();
        assert_eq!(f.live_shard_count(), 2);
        let pendings: Vec<Pending> = (0..6)
            .map(|i| f.submit(tensor(i as f32)).unwrap())
            .collect();
        assert_eq!(
            f.live_shard_count(),
            1,
            "the dead shard was retired on first refusal"
        );
        assert_eq!(f.shard_count(), 2, "the seat itself is kept");
        for (k, p) in pendings.into_iter().enumerate() {
            assert_eq!(p.wait().unwrap().data(), &[k as f32 * 1000.0 + k as f32]);
        }
        f.drain();
        assert_eq!(f.images_routed(), 6, "no stamp was lost to the dead shard");
        let seen: Vec<u64> = log.lock().unwrap().iter().map(|&(i, _)| i).collect();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        f.shutdown();
    }

    /// A shard dying mid-`submit_block` releases the failed index and the
    /// unsent tail, evicts the dead shard, and re-claims the remainder —
    /// the block completes whole, at contiguous coordinates, on the
    /// survivors.
    #[test]
    fn block_survives_mid_run_eviction() {
        let log: ShardLog = Arc::default();
        let control = Arc::new(RecordingControl::default());
        let shards: Vec<Box<dyn ShardTransport>> =
            vec![local_shard(&log, &control), Box::new(RefusingTransport)];
        let f = FleetHandle::new(
            shards,
            FleetPolicy::new(RoutePolicy::RoundRobin).with_lease_len(3),
        )
        .unwrap();
        // Indices 0–2 land on shard 0; index 3 starts the refusing shard's
        // lease and fails — eviction re-routes [3,6) to the survivor.
        let pendings = f.submit_block((0..5).map(|i| tensor(i as f32))).unwrap();
        assert_eq!(pendings.len(), 5);
        assert_eq!(f.live_shard_count(), 1);
        for (k, p) in pendings.into_iter().enumerate() {
            assert_eq!(p.wait().unwrap().data(), &[k as f32 * 1000.0 + k as f32]);
        }
        f.drain();
        assert_eq!(f.images_routed(), 5);
        let seen: Vec<u64> = log.lock().unwrap().iter().map(|&(i, _)| i).collect();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        f.shutdown();
    }

    /// A transport that accepts a few requests, strands them, then dies —
    /// the shape of a remote link that exhausted its replay budget with
    /// work in flight. Accepted requests park as orphans for the router
    /// to harvest.
    struct ParkingTransport {
        accept: usize,
        accepted: Mutex<usize>,
        parked: Mutex<Vec<Orphan>>,
        closed: AtomicBool,
    }

    impl ParkingTransport {
        fn new(accept: usize) -> Self {
            ParkingTransport {
                accept,
                accepted: Mutex::new(0),
                parked: Mutex::new(Vec::new()),
                closed: AtomicBool::new(false),
            }
        }
    }

    impl ShardTransport for ParkingTransport {
        fn submit_indexed(&self, index: u64, image: Tensor) -> Result<Pending, ServeError> {
            let mut accepted = self.accepted.lock().unwrap();
            if *accepted < self.accept {
                *accepted += 1;
                let (pending, slot) = pending_pair();
                self.parked.lock().unwrap().push(Orphan {
                    index,
                    image,
                    class: QosClass::default(),
                    slot,
                });
                Ok(pending)
            } else {
                self.closed.store(true, Ordering::Release);
                Err(ServeError::ShutDown)
            }
        }
        fn in_flight(&self) -> u64 {
            0
        }
        fn drain(&self) {}
        fn shutdown(&self) {
            self.closed.store(true, Ordering::Release);
        }
        fn is_closed(&self) -> bool {
            self.closed.load(Ordering::Acquire)
        }
        fn take_orphans(&self) -> Vec<Orphan> {
            std::mem::take(&mut *self.parked.lock().unwrap())
        }
        fn stats(&self) -> ServeStats {
            ServeStats::default()
        }
        fn apply_drift(&self, _t_hours: f64) -> bool {
            false
        }
        fn reprogram(&self) -> Result<(), ServeError> {
            Ok(())
        }
        fn set_parallelism(&self, _par: Parallelism) {}
    }

    /// Requests stranded on a dying shard are rescued: eviction harvests
    /// its orphans and re-runs each **at its original coordinate** on a
    /// survivor, fulfilling the caller's original `Pending` — so churn is
    /// invisible in both the results and the coordinates.
    #[test]
    fn stranded_requests_are_rescued_at_their_coordinates() {
        let log: ShardLog = Arc::default();
        let control = Arc::new(RecordingControl::default());
        let shards: Vec<Box<dyn ShardTransport>> = vec![
            Box::new(ParkingTransport::new(2)),
            local_shard(&log, &control),
        ];
        let f = FleetHandle::new(shards, FleetPolicy::new(RoutePolicy::RoundRobin)).unwrap();
        // Round-robin at lease 1: indices 0 and 2 park on the dying shard;
        // its third lease (index 4) is refused, triggering eviction — the
        // rescue re-submits 0 and 2 on the survivor, and 4 retries there.
        let pendings: Vec<Pending> = (0..6)
            .map(|i| f.submit(tensor(i as f32)).unwrap())
            .collect();
        assert_eq!(f.live_shard_count(), 1);
        for (k, p) in pendings.into_iter().enumerate() {
            assert_eq!(
                p.wait().unwrap().data(),
                &[k as f32 * 1000.0 + k as f32],
                "request {k} resolved at its original coordinate"
            );
        }
        f.drain();
        assert_eq!(f.images_routed(), 6);
        // The survivor served the whole stream: its own leases plus the
        // rescued coordinates, each exactly once.
        let mut seen: Vec<u64> = log.lock().unwrap().iter().map(|&(i, _)| i).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        f.shutdown();
    }

    /// With no survivor left, stranded requests cancel instead of hanging:
    /// settlement is guaranteed even when the whole fleet dies.
    #[test]
    fn strays_cancel_when_no_survivor_remains() {
        let shards: Vec<Box<dyn ShardTransport>> = vec![Box::new(ParkingTransport::new(2))];
        let f = FleetHandle::new(shards, FleetPolicy::default()).unwrap();
        let p0 = f.submit(tensor(0.0)).unwrap();
        let p1 = f.submit(tensor(1.0)).unwrap();
        // The third submission kills the only shard: no survivor, so the
        // submission errors and the strands cancel.
        assert!(matches!(f.submit(tensor(2.0)), Err(ServeError::ShutDown)));
        f.drain();
        assert_eq!(p0.wait(), Err(ServeError::Canceled));
        assert_eq!(p1.wait(), Err(ServeError::Canceled));
        f.shutdown();
    }

    /// The live-join path: a shard added to a running fleet is programmed
    /// from the fleet seed, receives the recorded drift history, and
    /// enters the rotation with fresh leases — serving part of the stream
    /// without shifting anyone's coordinates.
    #[test]
    fn late_joiner_is_programmed_drifted_and_enters_rotation() {
        let log0: ShardLog = Arc::default();
        let c0 = Arc::new(RecordingControl::default());
        let f = FleetHandle::new(
            vec![local_shard(&log0, &c0)],
            FleetPolicy::new(RoutePolicy::RoundRobin),
        )
        .unwrap();
        f.submit(tensor(0.0)).unwrap().wait().unwrap();
        assert!(f.apply_drift(3.5));
        assert!(f.apply_drift(1.5));

        let log1: ShardLog = Arc::default();
        let c1 = Arc::new(RecordingControl::default());
        f.add_shard(local_shard(&log1, &c1)).unwrap();
        assert_eq!(f.shard_count(), 2);
        assert_eq!(f.live_shard_count(), 2);
        assert_eq!(
            *c1.reprograms.lock().unwrap(),
            1,
            "joiner programmed from the fleet seed"
        );
        assert_eq!(
            *c1.drifts.lock().unwrap(),
            vec![3.5, 1.5],
            "drift history replayed onto the joiner"
        );

        // The rotation now alternates; global indices stay contiguous and
        // solo-identical regardless of which replica serves them.
        let pendings: Vec<Pending> = (1..5)
            .map(|i| f.submit(tensor(i as f32)).unwrap())
            .collect();
        for (k, p) in pendings.into_iter().enumerate() {
            let k = (k + 1) as f32;
            assert_eq!(p.wait().unwrap().data(), &[k * 1000.0 + k]);
        }
        f.drain();
        let j: Vec<u64> = log1.lock().unwrap().iter().map(|&(i, _)| i).collect();
        assert!(!j.is_empty(), "the joiner served part of the stream");
        let mut all: Vec<u64> = log0.lock().unwrap().iter().map(|&(i, _)| i).collect();
        all.extend_from_slice(&j);
        all.sort_unstable();
        assert_eq!(all, (0..5).collect::<Vec<u64>>());

        // Reprogram clears the drift history: a post-reprogram joiner is
        // fresh-seeded with nothing to replay.
        f.reprogram().unwrap();
        let c2 = Arc::new(RecordingControl::default());
        let log2: ShardLog = Arc::default();
        f.add_shard(local_shard(&log2, &c2)).unwrap();
        assert_eq!(*c2.drifts.lock().unwrap(), Vec::<f64>::new());
        f.shutdown();

        // A closed fleet refuses joiners.
        let c3 = Arc::new(RecordingControl::default());
        let log3: ShardLog = Arc::default();
        assert!(matches!(
            f.add_shard(local_shard(&log3, &c3)),
            Err(ServeError::ShutDown)
        ));
    }

    #[test]
    fn empty_fleet_is_a_typed_error_not_a_panic() {
        match FleetHandle::new(Vec::new(), FleetPolicy::default()) {
            Err(ServeError::NoShards) => {}
            other => panic!("expected NoShards, got {other:?}"),
        }
    }

    /// A fleet class budget of zero deterministically sheds the class at
    /// the router — and the released index is re-issued to the next
    /// admitted request, so survivors keep solo-identical coordinates.
    #[test]
    fn fleet_class_budget_sheds_and_releases_the_index() {
        let log: ShardLog = Arc::default();
        let control = Arc::new(RecordingControl::default());
        let shards: Vec<Box<dyn ShardTransport>> = vec![local_shard(&log, &control)];
        let policy = FleetPolicy::default().with_class_budget(Priority::Low, 0);
        let f = FleetHandle::new(shards, policy).unwrap();

        let shed = f.submit_qos(tensor(7.0), QosClass::low()).unwrap();
        assert_eq!(shed.shed_reason(), Some(ShedReason::ClassBudget));
        assert_eq!(f.images_routed(), 0, "shed before any index survived");

        // The next admitted request claims the released coordinate 0.
        let p = f
            .submit_qos(tensor(9.0), QosClass::default())
            .unwrap()
            .admitted()
            .expect("normal class is unbudgeted");
        assert_eq!(p.wait().unwrap().data(), &[9.0]);

        let stats = f.stats();
        assert_eq!(stats.router.class(Priority::Low).shed_class_budget, 1);
        assert_eq!(stats.router.class(Priority::Low).admitted, 0);
        // The shard counted the admission; the router counted the shed —
        // the aggregate sees each outcome exactly once.
        let agg = stats.aggregate();
        assert_eq!(agg.qos.admitted_total(), 1);
        assert_eq!(agg.qos.shed_total(), 1);
        f.shutdown();
    }

    /// The pacer's window throttles best-effort traffic while High
    /// bypasses it — but nothing bypasses the hard in-flight cap. Every
    /// shed releases its index, so admitted requests stay contiguous.
    #[test]
    fn pacer_sheds_normal_but_high_bypasses_the_window() {
        use std::sync::Condvar;

        // A runner that parks every batch until the test releases it, so
        // in-flight occupancy is deterministic at each admission check.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let runner_gate = Arc::clone(&gate);
        let handle = spawn(
            BatchPolicy::new(4, Duration::from_micros(100)),
            move |indices: &[u64], inputs: &[Tensor]| {
                let (lock, cv) = &*runner_gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                Ok(indices
                    .iter()
                    .zip(inputs)
                    .map(|(&idx, t)| tensor(idx as f32 * 1000.0 + t.data()[0]))
                    .collect())
            },
        );
        let shards: Vec<Box<dyn ShardTransport>> = vec![Box::new(LocalTransport::new(
            handle,
            Box::new(ControlHandle(Arc::default())),
        ))];
        let pacer = PacerConfig {
            enabled: true,
            min_window: 1,
            max_window: 1,
            hard_limit: 2,
            decrease_cooldown: Duration::ZERO,
        };
        let f = FleetHandle::new(shards, FleetPolicy::default().with_pacer(pacer)).unwrap();

        // Empty shard: window 1 admits the first request (index 0).
        let p0 = f
            .submit_qos(tensor(0.0), QosClass::default())
            .unwrap()
            .admitted()
            .expect("idle shard admits");
        // One in flight ≥ window 1: Normal sheds with Overload.
        let shed = f.submit_qos(tensor(1.0), QosClass::default()).unwrap();
        assert_eq!(shed.shed_reason(), Some(ShedReason::Overload));
        // High bypasses the window (1 < hard limit 2): admitted at the
        // released coordinate 1.
        let p1 = f
            .submit_qos(tensor(2.0), QosClass::high())
            .unwrap()
            .admitted()
            .expect("high priority bypasses the pacer window");
        // Two in flight = hard limit: even High sheds.
        let shed = f.submit_qos(tensor(3.0), QosClass::high()).unwrap();
        assert_eq!(shed.shed_reason(), Some(ShedReason::Overload));

        // Release the runner: survivors ran at contiguous coordinates.
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        assert_eq!(p0.wait().unwrap().data(), &[0.0]);
        assert_eq!(p1.wait().unwrap().data(), &[1.0 * 1000.0 + 2.0]);
        f.drain();
        assert_eq!(f.images_routed(), 2, "both sheds released their stamps");

        let router = f.stats().router;
        assert_eq!(router.class(Priority::Normal).shed_overload, 1);
        assert_eq!(router.class(Priority::High).shed_overload, 1);
        f.shutdown();
    }

    /// Pins the QoS merge semantics of [`FleetStats::aggregate`]: per-class
    /// counters sum across shard ledgers *and* the router's own ledger,
    /// latency samples pool (never averaged), and ECN marks add — so a
    /// congested shard's deadline misses and the router's pacer sheds are
    /// both visible in one fleet-wide ledger.
    #[test]
    fn aggregate_merges_class_ledgers_across_shards_and_router() {
        let mut shard_a = ServeStats::default();
        shard_a.qos.class_mut(Priority::High).admitted = 4;
        shard_a.qos.class_mut(Priority::High).latencies = vec![Duration::from_millis(2); 4];
        shard_a.qos.class_mut(Priority::Low).shed_queue_full = 3;
        shard_a.qos.ecn_marks = 1;

        let mut shard_b = ServeStats::default();
        shard_b.qos.class_mut(Priority::High).admitted = 1;
        shard_b.qos.class_mut(Priority::High).deadline_misses = 1;
        shard_b.qos.class_mut(Priority::High).latencies = vec![Duration::from_millis(40)];
        shard_b.qos.class_mut(Priority::Normal).infeasible = 2;

        let mut router = QosStats::default();
        router.class_mut(Priority::Low).shed_overload = 7;
        router.ecn_marks = 5;

        let agg = FleetStats {
            shards: vec![shard_a, shard_b],
            router,
            health: Vec::new(),
        }
        .aggregate();

        let high = agg.qos.class(Priority::High);
        assert_eq!(high.admitted, 5);
        assert_eq!(high.deadline_misses, 1);
        assert_eq!(high.latencies.len(), 5, "samples pool across shards");
        assert_eq!(
            high.latency_percentile(1.0),
            Some(Duration::from_millis(40)),
            "the congested shard's tail survives pooling"
        );
        assert_eq!(agg.qos.class(Priority::Normal).infeasible, 2);
        let low = agg.qos.class(Priority::Low);
        assert_eq!(low.shed_queue_full, 3, "shard-decided sheds counted");
        assert_eq!(low.shed_overload, 7, "router-decided sheds counted");
        assert_eq!(low.shed_total(), 10);
        assert_eq!(agg.qos.ecn_marks, 6);
        assert_eq!(agg.qos.admitted_total(), 5);
        assert_eq!(agg.qos.shed_total(), 10);
    }

    fn spec_shard(
        log: &ShardLog,
        control: &Arc<RecordingControl>,
        spec: ShardSpec,
    ) -> Box<dyn ShardTransport> {
        Box::new(LocalTransport::with_spec(
            shard_handle(
                Arc::clone(log),
                BatchPolicy::new(2, Duration::from_millis(1)),
            ),
            Box::new(ControlHandle(Arc::clone(control))),
            spec,
        ))
    }

    /// The registry: transports group by model id, each group owns an
    /// independent stream `0, 1, 2, …`, and requests never cross groups.
    #[test]
    fn registry_groups_by_model_id_with_independent_streams() {
        let control = Arc::new(RecordingControl::default());
        let logs: Vec<ShardLog> = (0..3).map(|_| Arc::default()).collect();
        let f = FleetHandle::new(
            vec![
                spec_shard(&logs[0], &control, ShardSpec::golden("alpha")),
                spec_shard(&logs[1], &control, ShardSpec::golden("alpha")),
                spec_shard(&logs[2], &control, ShardSpec::golden("beta")),
            ],
            FleetPolicy::new(RoutePolicy::RoundRobin),
        )
        .unwrap();
        assert_eq!(f.model_ids(), vec!["alpha".to_string(), "beta".to_string()]);

        let a: Vec<Pending> = (0..4)
            .map(|i| f.submit_to("alpha", tensor(i as f32)).unwrap())
            .collect();
        let b: Vec<Pending> = (0..3)
            .map(|i| f.submit_to("beta", tensor(i as f32)).unwrap())
            .collect();
        // Each model's stream starts at 0 — coordinates are per group, so
        // both models stay solo-identical.
        for (k, p) in a.into_iter().enumerate() {
            assert_eq!(p.wait().unwrap().data(), &[k as f32 * 1000.0 + k as f32]);
        }
        for (k, p) in b.into_iter().enumerate() {
            assert_eq!(p.wait().unwrap().data(), &[k as f32 * 1000.0 + k as f32]);
        }
        f.drain();
        assert_eq!(f.images_routed(), 7);
        assert_eq!(f.images_routed_for("alpha").unwrap(), 4);
        assert_eq!(f.images_routed_for("beta").unwrap(), 3);
        // Beta's only shard saw its whole stream; alpha's two split theirs.
        let beta: Vec<u64> = logs[2].lock().unwrap().iter().map(|&(i, _)| i).collect();
        assert_eq!(beta, vec![0, 1, 2]);
        let mut alpha: Vec<u64> = logs[0].lock().unwrap().iter().map(|&(i, _)| i).collect();
        alpha.extend(logs[1].lock().unwrap().iter().map(|&(i, _)| i));
        alpha.sort_unstable();
        assert_eq!(alpha, vec![0, 1, 2, 3]);

        // The un-addressed API is group 0 ("alpha") and continues its
        // stream.
        let p = f.submit(tensor(9.0)).unwrap();
        assert_eq!(p.wait().unwrap().data(), &[4.0 * 1000.0 + 9.0]);

        assert!(matches!(
            f.submit_to("gamma", tensor(0.0)),
            Err(ServeError::UnknownModel(id)) if id == "gamma"
        ));
        assert!(matches!(
            f.images_routed_for("gamma"),
            Err(ServeError::UnknownModel(_))
        ));
        f.shutdown();
    }

    /// One model id with two different device recipes is refused — at
    /// assembly and at live join alike.
    #[test]
    fn conflicting_specs_for_one_model_are_refused() {
        let control = Arc::new(RecordingControl::default());
        let logs: Vec<ShardLog> = (0..3).map(|_| Arc::default()).collect();
        let reseeded = ShardSpec {
            seed: 7,
            ..ShardSpec::golden("alpha")
        };
        match FleetHandle::new(
            vec![
                spec_shard(&logs[0], &control, ShardSpec::golden("alpha")),
                spec_shard(&logs[1], &control, reseeded.clone()),
            ],
            FleetPolicy::default(),
        ) {
            Err(ServeError::SpecMismatch(id)) => assert_eq!(id, "alpha"),
            other => panic!("expected SpecMismatch, got {other:?}"),
        }

        let f = FleetHandle::new(
            vec![spec_shard(&logs[0], &control, ShardSpec::golden("alpha"))],
            FleetPolicy::default(),
        )
        .unwrap();
        assert!(matches!(
            f.add_shard(spec_shard(&logs[2], &control, reseeded)),
            Err(ServeError::SpecMismatch(_))
        ));
        // A joiner with a *new* model id founds a new group instead.
        f.add_shard(spec_shard(&logs[2], &control, ShardSpec::golden("beta")))
            .unwrap();
        assert_eq!(f.model_ids(), vec!["alpha".to_string(), "beta".to_string()]);
        let p = f.submit_to("beta", tensor(1.0)).unwrap();
        assert_eq!(p.wait().unwrap().data(), &[1.0]);
        f.shutdown();
    }

    /// Graceful decommission: the seat drains, in-flight work finishes,
    /// later requests re-route with contiguous coordinates, and the
    /// operation is idempotent — but a group's last member is protected.
    #[test]
    fn remove_shard_drains_gracefully_and_guards_the_floor() {
        let (f, logs, _) = fleet(2, FleetPolicy::new(RoutePolicy::RoundRobin));
        let pendings: Vec<Pending> = (0..4)
            .map(|i| f.submit(tensor(i as f32)).unwrap())
            .collect();
        f.remove_shard(0).unwrap();
        assert_eq!(f.live_shard_count(), 1);
        // Every pre-removal request settled at its coordinate — removal
        // cancelled nothing.
        for (k, p) in pendings.into_iter().enumerate() {
            assert_eq!(p.wait().unwrap().data(), &[k as f32 * 1000.0 + k as f32]);
        }
        // Later requests land on the survivor, stream still contiguous.
        let p = f.submit(tensor(4.0)).unwrap();
        assert_eq!(p.wait().unwrap().data(), &[4.0 * 1000.0 + 4.0]);
        f.drain();
        let survivor: Vec<u64> = logs[1].lock().unwrap().iter().map(|&(i, _)| i).collect();
        assert!(survivor.contains(&4));

        f.remove_shard(0).unwrap(); // idempotent: already out of rotation
        assert!(matches!(f.remove_shard(1), Err(ServeError::LiveFloor)));
        assert!(matches!(
            f.remove_shard(9),
            Err(ServeError::UnknownShard(9))
        ));
        assert_eq!(f.live_shard_count(), 1, "the floor held");
        f.shutdown();
    }

    /// Background recalibration: reprogram from the spec seed plus a
    /// drift-log replay, drift age reset, stream untouched — and the
    /// group's last routable member is never taken.
    #[test]
    fn recalibrate_shard_replays_drift_and_resets_age() {
        let c0 = Arc::new(RecordingControl::default());
        let c1 = Arc::new(RecordingControl::default());
        let log0: ShardLog = Arc::default();
        let log1: ShardLog = Arc::default();
        let f = FleetHandle::new(
            vec![local_shard(&log0, &c0), local_shard(&log1, &c1)],
            FleetPolicy::new(RoutePolicy::RoundRobin),
        )
        .unwrap();
        f.submit(tensor(0.0)).unwrap().wait().unwrap();
        f.apply_drift(3.5);
        f.apply_drift(1.5);
        let health = f.shard_health();
        assert_eq!(health[0].drift_age, 2);
        assert_eq!(health[1].drift_age, 2);

        f.recalibrate_shard(0).unwrap();
        assert_eq!(
            *c0.reprograms.lock().unwrap(),
            1,
            "recal reprograms from the spec seed"
        );
        assert_eq!(
            *c0.drifts.lock().unwrap(),
            vec![3.5, 1.5, 3.5, 1.5],
            "the fleet drift history is replayed after the reprogram"
        );
        assert_eq!(*c1.reprograms.lock().unwrap(), 0, "only the target seat");
        let health = f.shard_health();
        assert_eq!(health[0].drift_age, 0, "recal resets the drift age");
        assert_eq!(health[0].recals, 1);
        assert!(!health[0].draining, "the seat returned to rotation");
        assert_eq!(health[1].drift_age, 2);

        // The stream continued where it left off — recal shifted nothing.
        let p = f.submit(tensor(1.0)).unwrap();
        assert_eq!(p.wait().unwrap().data(), &[1.0 * 1000.0 + 1.0]);
        f.drain();
        assert_eq!(f.images_routed(), 2);

        // The fleet-level stats surface the same view, and aggregate
        // pools ages as a max (stalest replica), reprograms as a sum.
        let stats = f.stats();
        assert_eq!(stats.health, f.shard_health());
        assert_eq!(stats.shards[0].drift_age, 0);
        assert_eq!(stats.shards[1].drift_age, 2);
        let agg = stats.aggregate();
        assert_eq!(agg.drift_age, 2);
        assert_eq!(agg.reprograms, 1);

        f.shutdown();
    }

    /// A one-member group refuses recalibration (the model would go dark);
    /// an evicted seat refuses too.
    #[test]
    fn recalibrate_refuses_the_last_routable_member() {
        let (f, _, _) = fleet(1, FleetPolicy::default());
        assert!(matches!(f.recalibrate_shard(0), Err(ServeError::LiveFloor)));
        assert!(matches!(
            f.recalibrate_shard(3),
            Err(ServeError::UnknownShard(3))
        ));
        f.shutdown();

        let (f, _, _) = fleet(2, FleetPolicy::default());
        f.remove_shard(0).unwrap();
        assert!(matches!(f.recalibrate_shard(0), Err(ServeError::ShutDown)));
        assert!(matches!(f.recalibrate_shard(1), Err(ServeError::LiveFloor)));
        f.shutdown();
    }

    /// Lease exhaustion mid-`submit_block`: a block bigger than the lease
    /// spans fresh leases without gaps or duplicates.
    #[test]
    fn lease_exhaustion_mid_block_keeps_indices_contiguous() {
        let (f, logs, _) = fleet(
            3,
            FleetPolicy::new(RoutePolicy::RoundRobin).with_lease_len(2),
        );
        let pendings = f.submit_block((0..7).map(|i| tensor(i as f32))).unwrap();
        for (k, p) in pendings.into_iter().enumerate() {
            assert_eq!(p.wait().unwrap().data(), &[k as f32 * 1000.0 + k as f32]);
        }
        f.drain();
        let mut all: Vec<u64> = logs
            .iter()
            .flat_map(|l| {
                l.lock()
                    .unwrap()
                    .iter()
                    .map(|&(i, _)| i)
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..7).collect::<Vec<u64>>());
        f.shutdown();
    }
}
