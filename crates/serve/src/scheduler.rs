//! The worker thread: bounded channel → [`QosCoalescer`] → [`BatchRunner`].
//!
//! One worker drains the queue in FIFO order (or earliest-deadline-first
//! within priority bands under
//! [`QosOrdering::EdfWithinPriority`](crate::QosOrdering)). Every request already
//! carries its global stream index (stamped at submission — by the
//! handle's own counter, or by a fleet router through
//! `ServeHandle::submit_at`), and the worker hands the per-request
//! indices to the runner alongside the images. The runner keys evaluation
//! randomness to those indices (`Executor::infer_batch_indexed`) — the
//! mechanism behind batch-composition invariance, and its fleet
//! generalization: a shard's batches need not be contiguous in the global
//! stream.

use crate::handle::{Msg, Request, ServeError, ServeHandle, SharedState};
use crate::qos::QosCoalescer;
use crate::BatchPolicy;
use aimc_dnn::{ExecError, Tensor};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::Instant;

/// Executes one coalesced micro-batch.
///
/// `indices[i]` is the global stream index of `inputs[i]` (the slices have
/// equal length). With a solo handle the indices of a batch are contiguous
/// and ascending; a fleet shard receives whatever slice of the global
/// stream the router handed it. Runners that wrap a stateful backend must
/// key per-image randomness to the global index (not the position within
/// the batch) to preserve batch-composition invariance.
///
/// Implemented for any `FnMut(&[u64], &[Tensor]) -> Result<Vec<Tensor>,
/// ExecError>` closure.
pub trait BatchRunner: Send + 'static {
    /// Runs the batch, returning one output per input (same order).
    ///
    /// # Errors
    /// Any [`ExecError`]; it is broadcast to every request of the batch.
    fn run_batch(&mut self, indices: &[u64], inputs: &[Tensor]) -> Result<Vec<Tensor>, ExecError>;
}

impl<F> BatchRunner for F
where
    F: FnMut(&[u64], &[Tensor]) -> Result<Vec<Tensor>, ExecError> + Send + 'static,
{
    fn run_batch(&mut self, indices: &[u64], inputs: &[Tensor]) -> Result<Vec<Tensor>, ExecError> {
        self(indices, inputs)
    }
}

/// Starts a micro-batch scheduler: a bounded MPSC queue in front of one
/// worker thread that coalesces requests under `policy` and drives
/// `runner` one batch at a time.
///
/// Returns the clone-able [`ServeHandle`] used to submit requests, drain,
/// and shut down. Dropping every handle without calling
/// [`ServeHandle::shutdown`] leaves queued requests canceled and detaches
/// the worker; prefer an explicit shutdown.
pub fn spawn<R: BatchRunner>(policy: BatchPolicy, runner: R) -> ServeHandle {
    let policy = policy.normalized();
    let (tx, rx) = mpsc::sync_channel(policy.queue_depth);
    let shared = Arc::new(SharedState::for_policy(&policy));
    let worker_shared = Arc::clone(&shared);
    let worker = std::thread::Builder::new()
        .name("aimc-serve".into())
        .spawn(move || worker_loop(rx, worker_shared, policy, runner))
        .expect("spawn aimc-serve worker");
    ServeHandle::new(tx, shared, worker)
}

fn worker_loop<R: BatchRunner>(
    rx: Receiver<Msg>,
    shared: Arc<SharedState>,
    policy: BatchPolicy,
    mut runner: R,
) {
    let epoch = Instant::now();
    let mut coal: QosCoalescer<Request> =
        QosCoalescer::new(policy.max_batch, policy.max_wait, policy.qos.ordering);
    // Queues a request with its EDF key: the absolute completion deadline
    // in the epoch clock domain (relative deadlines are anchored to the
    // *submission* instant, not the dequeue instant).
    let push = |coal: &mut QosCoalescer<Request>, req: Request| {
        let deadline = req
            .class
            .deadline
            .map(|d| req.submitted_at.saturating_duration_since(epoch) + d);
        let priority = req.class.priority;
        coal.push(req, priority, deadline, epoch.elapsed())
    };
    loop {
        let msg = match coal.deadline() {
            // A partial batch is pending: wait only until its deadline.
            Some(deadline) => {
                let now = epoch.elapsed();
                if now >= deadline {
                    flush(&mut coal, &mut runner, &shared);
                    continue;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(m) => m,
                    Err(RecvTimeoutError::Timeout) => {
                        flush(&mut coal, &mut runner, &shared);
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            // Idle: block until the next request starts a batch.
            None => match rx.recv() {
                Ok(m) => m,
                Err(_) => break,
            },
        };
        match msg {
            Msg::Request(req) => {
                if push(&mut coal, req) {
                    flush(&mut coal, &mut runner, &shared);
                }
            }
            Msg::Shutdown => {
                // Drain everything accepted before the shutdown sentinel,
                // then exit. Requests racing past the closed flag (if any)
                // are canceled by their tickets when the channel drops.
                while let Ok(m) = rx.try_recv() {
                    if let Msg::Request(req) = m {
                        if push(&mut coal, req) {
                            flush(&mut coal, &mut runner, &shared);
                        }
                    }
                }
                break;
            }
        }
    }
    while !coal.is_empty() {
        flush(&mut coal, &mut runner, &shared);
    }
}

/// Dispatches one coalesced batch (if any) and fulfills its tickets.
fn flush<R: BatchRunner>(coal: &mut QosCoalescer<Request>, runner: &mut R, shared: &SharedState) {
    let reqs = coal.take_batch();
    if reqs.is_empty() {
        return;
    }
    let n = reqs.len();
    let mut indices = Vec::with_capacity(n);
    let mut images = Vec::with_capacity(n);
    let mut tickets = Vec::with_capacity(n);
    let mut waits = Vec::with_capacity(n);
    for r in reqs {
        waits.push(r.submitted_at.elapsed());
        indices.push(r.index);
        images.push(r.image);
        tickets.push(r.ticket);
    }
    shared.note_batch(n, &waits);
    let exec_start = Instant::now();
    let outcome = runner.run_batch(&indices, &images);
    // Service-time EWMA feeds deadline-feasibility admission checks.
    shared.note_exec(n, exec_start.elapsed());
    match outcome {
        Ok(outs) if outs.len() == n => {
            for (ticket, y) in tickets.into_iter().zip(outs) {
                ticket.fulfill(Ok(y));
            }
        }
        // Contract violation: the runner returned the wrong cardinality.
        // Cancel the batch rather than mis-assigning outputs (and keep the
        // worker alive for later batches).
        Ok(_) => {
            for ticket in tickets {
                ticket.fulfill(Err(ServeError::Canceled));
            }
        }
        Err(e) => {
            for ticket in tickets {
                ticket.fulfill(Err(ServeError::Exec(e.clone())));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::Pending;
    use aimc_dnn::Shape;
    use std::sync::Mutex;
    use std::time::Duration;

    fn tensor(v: f32) -> Tensor {
        Tensor::from_vec(Shape::new(1, 1, 1), vec![v])
    }

    /// Dispatched batches as seen by a recording runner: (indices, tags).
    type BatchLog = Arc<Mutex<Vec<(Vec<u64>, Vec<f32>)>>>;

    /// A runner that records every dispatched batch (per-request stream
    /// indices + tags) and echoes each input with +0.5.
    fn recording_runner(
        log: BatchLog,
    ) -> impl FnMut(&[u64], &[Tensor]) -> Result<Vec<Tensor>, ExecError> + Send + 'static {
        move |indices, inputs| {
            let tags: Vec<f32> = inputs.iter().map(|t| t.data()[0]).collect();
            log.lock().unwrap().push((indices.to_vec(), tags));
            Ok(inputs.iter().map(|t| tensor(t.data()[0] + 0.5)).collect())
        }
    }

    #[test]
    fn requests_complete_fifo_and_batches_are_contiguous() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let handle = spawn(
            BatchPolicy::new(3, Duration::from_millis(5)),
            recording_runner(Arc::clone(&log)),
        );
        let pendings: Vec<Pending> = (0..10)
            .map(|i| handle.submit(tensor(i as f32)).unwrap())
            .collect();
        for (i, p) in pendings.into_iter().enumerate() {
            assert_eq!(p.wait().unwrap().data(), &[i as f32 + 0.5]);
        }
        handle.shutdown();

        let log = log.lock().unwrap();
        // Batches cover the stream in order: concatenating them yields the
        // submission sequence, and single-threaded submission stamps each
        // request with exactly the count submitted before it.
        let mut expect = 0u64;
        let mut flat = Vec::new();
        for (indices, tags) in log.iter() {
            assert!(tags.len() <= 3, "batch exceeded max_batch");
            for &idx in indices {
                assert_eq!(idx, expect, "stream index out of order");
                expect += 1;
            }
            flat.extend_from_slice(tags);
        }
        let want: Vec<f32> = (0..10).map(|i| i as f32).collect();
        assert_eq!(flat, want);
    }

    /// `submit_many` stamps exactly the indices a loop of `submit` calls
    /// would, interleaves correctly with surrounding single submissions,
    /// and completes every request.
    #[test]
    fn submit_many_numbering_matches_a_submit_loop() {
        // Reference: a loop of submit calls on one handle.
        let ref_log = Arc::new(Mutex::new(Vec::new()));
        let reference = spawn(
            BatchPolicy::new(4, Duration::from_millis(2)),
            recording_runner(Arc::clone(&ref_log)),
        );
        let ref_pendings: Vec<Pending> = (0..6)
            .map(|i| reference.submit(tensor(i as f32)).unwrap())
            .collect();
        reference.shutdown();

        // Same stream via submit → submit_many → submit.
        let log = Arc::new(Mutex::new(Vec::new()));
        let handle = spawn(
            BatchPolicy::new(4, Duration::from_millis(2)),
            recording_runner(Arc::clone(&log)),
        );
        let mut pendings = vec![handle.submit(tensor(0.0)).unwrap()];
        pendings.extend(
            handle
                .submit_many((1..5).map(|i| tensor(i as f32)))
                .unwrap(),
        );
        assert_eq!(handle.submit_many(std::iter::empty()).unwrap().len(), 0);
        pendings.push(handle.submit(tensor(5.0)).unwrap());
        handle.shutdown();

        for (i, (a, b)) in ref_pendings.into_iter().zip(pendings).enumerate() {
            assert_eq!(
                a.wait().unwrap().data(),
                b.wait().unwrap().data(),
                "request {i} diverged"
            );
        }
        // Flattened (index, tag) pairs are identical streams: 0..6 in order.
        let flatten = |l: &BatchLog| -> Vec<(u64, f32)> {
            l.lock()
                .unwrap()
                .iter()
                .flat_map(|(idx, tags)| idx.iter().copied().zip(tags.iter().copied()))
                .collect::<Vec<_>>()
        };
        let want: Vec<(u64, f32)> = (0..6).map(|i| (i as u64, i as f32)).collect();
        assert_eq!(flatten(&ref_log), want);
        assert_eq!(flatten(&log), want);
        assert_eq!(handle.stats().submitted, 6);
        assert_eq!(handle.stats().completed, 6);
        // Post-shutdown runs are refused and counted.
        assert!(matches!(
            handle.submit_many([tensor(9.0), tensor(10.0)]),
            Err(ServeError::ShutDown)
        ));
        assert_eq!(handle.stats().rejected, 2);
    }

    /// `submit_many` larger than the queue bound must not deadlock: the
    /// worker drains while the call feeds (backpressure per image).
    #[test]
    fn submit_many_survives_queue_backpressure() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let handle = spawn(
            BatchPolicy::new(8, Duration::from_millis(1)).with_queue_depth(4),
            recording_runner(Arc::clone(&log)),
        );
        let pendings = handle
            .submit_many((0..64).map(|i| tensor(i as f32)))
            .unwrap();
        for (i, p) in pendings.into_iter().enumerate() {
            assert_eq!(p.wait().unwrap().data(), &[i as f32 + 0.5]);
        }
        handle.shutdown();
        assert_eq!(handle.in_flight(), 0);
    }

    #[test]
    fn max_wait_flushes_partial_batches() {
        let log = Arc::new(Mutex::new(Vec::new()));
        // Huge max_batch: only the latency budget can flush.
        let handle = spawn(
            BatchPolicy::new(1000, Duration::from_millis(10)),
            recording_runner(Arc::clone(&log)),
        );
        let p = handle.submit(tensor(7.0)).unwrap();
        // Must complete without ever filling the batch.
        assert_eq!(p.wait().unwrap().data(), &[7.5]);
        assert_eq!(handle.stats().batches, 1);
        handle.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_requests() {
        let log = Arc::new(Mutex::new(Vec::new()));
        // Long max_wait: nothing would flush on its own before shutdown.
        let handle = spawn(
            BatchPolicy::new(100, Duration::from_secs(3600)),
            recording_runner(Arc::clone(&log)),
        );
        let pendings: Vec<Pending> = (0..5)
            .map(|i| handle.submit(tensor(i as f32)).unwrap())
            .collect();
        handle.shutdown();
        for (i, p) in pendings.into_iter().enumerate() {
            assert_eq!(p.wait().unwrap().data(), &[i as f32 + 0.5]);
        }
        // Post-shutdown submissions are refused and counted.
        assert!(matches!(
            handle.submit(tensor(9.0)),
            Err(ServeError::ShutDown)
        ));
        assert!(handle.is_closed());
        let stats = handle.stats();
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn shutdown_is_idempotent_across_clones() {
        let handle = spawn(BatchPolicy::default(), recording_runner(Default::default()));
        let clone = handle.clone();
        let p = clone.submit(tensor(1.0)).unwrap();
        handle.shutdown();
        clone.shutdown();
        handle.shutdown();
        assert_eq!(p.wait().unwrap().data(), &[1.5]);
        assert!(matches!(
            clone.submit(tensor(2.0)),
            Err(ServeError::ShutDown)
        ));
    }

    #[test]
    fn runner_errors_are_broadcast_to_the_whole_batch() {
        let bad = ExecError::ShapeMismatch {
            expected: Shape::new(1, 1, 1),
            got: Shape::new(2, 2, 2),
        };
        let e = bad.clone();
        let handle = spawn(
            BatchPolicy::new(2, Duration::from_millis(1)),
            move |_idx: &[u64], _inputs: &[Tensor]| Err(e.clone()),
        );
        let a = handle.submit(tensor(0.0)).unwrap();
        let b = handle.submit(tensor(1.0)).unwrap();
        assert_eq!(a.wait(), Err(ServeError::Exec(bad.clone())));
        assert_eq!(b.wait(), Err(ServeError::Exec(bad)));
        // The scheduler survives failing batches.
        let c = handle.submit(tensor(2.0)).unwrap();
        assert!(matches!(c.wait(), Err(ServeError::Exec(_))));
        handle.shutdown();
    }

    #[test]
    fn wrong_cardinality_runner_cancels_the_batch() {
        let handle = spawn(
            BatchPolicy::new(1, Duration::from_millis(1)),
            move |_idx: &[u64], _inputs: &[Tensor]| Ok(Vec::new()),
        );
        let p = handle.submit(tensor(3.0)).unwrap();
        // debug_assert fires only in the worker thread's debug builds; the
        // observable contract is cancellation either way.
        assert_eq!(p.wait(), Err(ServeError::Canceled));
        handle.shutdown();
    }

    /// Saturation/soak: ≥1k requests through a small queue, with
    /// images-seen parity — the runner observes exactly the submitted
    /// stream, each index once, in order.
    #[test]
    fn soak_1k_requests_keeps_image_parity() {
        let images_seen = Arc::new(Mutex::new(0u64));
        let seen = Arc::clone(&images_seen);
        let handle = spawn(
            BatchPolicy::new(16, Duration::from_millis(1)).with_queue_depth(8),
            move |indices: &[u64], inputs: &[Tensor]| {
                let mut count = seen.lock().unwrap();
                // Parity: single-threaded submission stamps in order, so
                // the batch continues exactly where the stream left off,
                // and every input carries its own stream index.
                for (&idx, t) in indices.iter().zip(inputs) {
                    assert_eq!(idx, *count);
                    assert_eq!(t.data()[0], idx as f32);
                    *count += 1;
                }
                Ok(inputs.iter().map(|t| tensor(-t.data()[0])).collect())
            },
        );

        const N: u64 = 1200;
        // Submit from two clones in lockstep order (single submitting
        // thread keeps the stream order deterministic; the tiny queue
        // depth forces backpressure blocking along the way).
        let clone = handle.clone();
        let pendings: Vec<Pending> = (0..N)
            .map(|i| {
                let h = if i % 2 == 0 { &handle } else { &clone };
                h.submit(tensor(i as f32)).unwrap()
            })
            .collect();
        handle.drain();
        assert_eq!(*images_seen.lock().unwrap(), N);
        for (i, p) in pendings.into_iter().enumerate() {
            assert!(p.is_ready(), "request {i} not completed after drain");
            assert_eq!(p.wait().unwrap().data(), &[-(i as f32)]);
        }
        let stats = handle.stats();
        assert_eq!(stats.submitted, N);
        assert_eq!(stats.completed, N);
        assert_eq!(stats.queue_waits.len() as u64, N);
        assert!(stats.max_batch_observed <= 16);
        assert!(stats.batches >= N / 16, "batches cannot undercount");
        assert!(stats.queue_wait_percentile(0.95).is_some());
        handle.shutdown();
        assert_eq!(*images_seen.lock().unwrap(), N);
    }
}
