//! The lease-based global index-range allocator.
//!
//! The fleet router used to claim stream indices with one `fetch_add` per
//! request — fine in-process, a round-trip per request once shards live
//! behind a wire. [`LeaseAllocator`] replaces the counter: the router
//! claims an [`IndexLease`] block once, routes the whole block to one
//! transport, and stamps requests from it locally.
//!
//! The allocator preserves the property the fleet invariance rests on:
//! **indices are issued lowest-first**. Reclaimed blocks (the unused tail
//! of a partially consumed lease, returned on drain) are re-issued before
//! any fresh index, so the stamped stream is exactly `0, 1, 2, …` in
//! submission order — request *k* always evaluates at coordinate *k*,
//! which is what keeps any fleet bit-identical to a solo session.

use aimc_wire::IndexLease;

/// Issues [`IndexLease`] blocks of global stream indices, lowest-first,
/// with reclaim and rewind (see the module docs).
#[derive(Debug, Default, Clone)]
pub struct LeaseAllocator {
    /// First index never yet issued as part of any lease.
    watermark: u64,
    /// Reclaimed, currently unissued ranges **below** the watermark:
    /// sorted by start, non-overlapping, non-adjacent (adjacent ranges
    /// merge on reclaim).
    free: Vec<IndexLease>,
}

impl LeaseAllocator {
    /// A fresh allocator: next lease starts at index 0.
    pub fn new() -> Self {
        LeaseAllocator::default()
    }

    /// Claims the lowest available block of **up to** `len` indices
    /// (`len` is clamped to ≥ 1). The returned lease is shorter than
    /// `len` only when a reclaimed fragment is re-issued — never empty.
    ///
    /// Allocations are lowest-first: a reclaimed range is always handed
    /// out before fresh indices above the watermark.
    pub fn alloc(&mut self, len: u64) -> IndexLease {
        let len = len.max(1);
        if let Some(first) = self.free.first_mut() {
            if first.len <= len {
                return self.free.remove(0);
            }
            let lease = IndexLease::new(first.start, len);
            first.start += len;
            first.len -= len;
            return lease;
        }
        let lease = IndexLease::new(self.watermark, len);
        self.watermark += len;
        lease
    }

    /// Returns an unused block so it is re-issued before any fresh index
    /// (typically the tail of a partially consumed lease, on drain).
    /// Empty blocks are ignored. Ranges adjacent to the watermark lower
    /// it; others merge into the sorted free list.
    pub fn reclaim(&mut self, lease: IndexLease) {
        if lease.len == 0 {
            return;
        }
        debug_assert!(
            lease.end() <= self.watermark,
            "reclaimed lease {lease:?} was never issued (watermark {})",
            self.watermark
        );
        if lease.end() == self.watermark {
            self.watermark = lease.start;
            // Free ranges that now touch the lowered watermark fold in too.
            while let Some(last) = self.free.last() {
                if last.end() == self.watermark {
                    self.watermark = last.start;
                    self.free.pop();
                } else {
                    break;
                }
            }
            return;
        }
        let at = self
            .free
            .partition_point(|existing| existing.start < lease.start);
        debug_assert!(
            self.free
                .iter()
                .all(|f| f.end() <= lease.start || f.start >= lease.end()),
            "reclaimed lease {lease:?} overlaps the free list"
        );
        self.free.insert(at, lease);
        // Merge the neighbors the insertion made adjacent.
        let mut i = at.saturating_sub(1);
        while i + 1 < self.free.len() {
            if self.free[i].end() == self.free[i + 1].start {
                self.free[i].len += self.free[i + 1].len;
                self.free.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }

    /// Forgets every issued and reclaimed index: the next lease starts at
    /// 0 again (the reprogram rewind — callers must have quiesced all
    /// outstanding leases first).
    pub fn rewind(&mut self) {
        self.watermark = 0;
        self.free.clear();
    }

    /// The lowest index the next [`LeaseAllocator::alloc`] will issue.
    pub fn next_index(&self) -> u64 {
        self.free.first().map_or(self.watermark, |l| l.start)
    }

    /// Indices currently issued and not reclaimed (the stamped-or-in-lease
    /// span of the stream).
    pub fn outstanding(&self) -> u64 {
        self.watermark - self.free.iter().map(|l| l.len).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_allocations_are_contiguous_from_zero() {
        let mut a = LeaseAllocator::new();
        assert_eq!(a.alloc(4), IndexLease::new(0, 4));
        assert_eq!(a.alloc(4), IndexLease::new(4, 4));
        assert_eq!(a.alloc(1), IndexLease::new(8, 1));
        assert_eq!(a.next_index(), 9);
        assert_eq!(a.outstanding(), 9);
    }

    #[test]
    fn zero_len_requests_clamp_to_one() {
        let mut a = LeaseAllocator::new();
        assert_eq!(a.alloc(0), IndexLease::new(0, 1));
        assert_eq!(a.alloc(0), IndexLease::new(1, 1));
    }

    /// The drain path: the partial tail of the most recent lease lowers
    /// the watermark, so the next lease continues exactly where the
    /// stamped stream stopped.
    #[test]
    fn reclaiming_the_tail_lowers_the_watermark() {
        let mut a = LeaseAllocator::new();
        let l = a.alloc(8);
        // 3 of 8 indices stamped; drain returns the tail.
        a.reclaim(IndexLease::new(l.start + 3, l.len - 3));
        assert_eq!(a.next_index(), 3);
        assert_eq!(a.outstanding(), 3);
        assert_eq!(a.alloc(8), IndexLease::new(3, 8));
    }

    /// Reclaimed interior fragments are re-issued lowest-first and split
    /// on demand, before any fresh index.
    #[test]
    fn interior_reclaims_are_reissued_lowest_first() {
        let mut a = LeaseAllocator::new();
        let l0 = a.alloc(4); // [0, 4)
        let _second = a.alloc(4); // [4, 8)
        a.reclaim(IndexLease::new(l0.start + 1, 3)); // [1, 4) free, below watermark
        assert_eq!(a.next_index(), 1);
        // Split: a request for 1 takes the head of the fragment.
        assert_eq!(a.alloc(1), IndexLease::new(1, 1));
        // A request larger than the fragment gets the whole fragment
        // (short lease) rather than skipping ahead.
        assert_eq!(a.alloc(64), IndexLease::new(2, 2));
        // Only then do fresh indices resume.
        assert_eq!(a.alloc(2), IndexLease::new(8, 2));
    }

    #[test]
    fn adjacent_reclaims_merge() {
        let mut a = LeaseAllocator::new();
        let _ = a.alloc(10); // [0, 10)
        a.reclaim(IndexLease::new(2, 2)); // [2, 4)
        a.reclaim(IndexLease::new(6, 2)); // [2,4) ∪ [6,8)
        a.reclaim(IndexLease::new(4, 2)); // merges into [2, 8)
        assert_eq!(a.alloc(100), IndexLease::new(2, 6), "merged fragment");
        // Reclaiming the global tail folds free ranges into the watermark.
        a.reclaim(IndexLease::new(2, 6));
        a.reclaim(IndexLease::new(8, 2));
        assert_eq!(a.next_index(), 2);
        assert_eq!(a.outstanding(), 2);
    }

    #[test]
    fn empty_reclaims_are_ignored() {
        let mut a = LeaseAllocator::new();
        let _ = a.alloc(4);
        a.reclaim(IndexLease::new(4, 0));
        assert_eq!(a.next_index(), 4);
        assert_eq!(a.outstanding(), 4);
    }

    #[test]
    fn rewind_restarts_the_stream_at_zero() {
        let mut a = LeaseAllocator::new();
        let _ = a.alloc(16);
        a.reclaim(IndexLease::new(10, 6));
        a.rewind();
        assert_eq!(a.next_index(), 0);
        assert_eq!(a.outstanding(), 0);
        assert_eq!(a.alloc(4), IndexLease::new(0, 4));
    }

    /// Lease size 1 is the PR 4 counter: every alloc issues exactly the
    /// next index.
    #[test]
    fn lease_size_one_degenerates_to_a_counter() {
        let mut a = LeaseAllocator::new();
        for k in 0..100u64 {
            assert_eq!(a.alloc(1), IndexLease::new(k, 1));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    /// The lowest index not currently issued — what a lowest-first
    /// allocator must hand out next.
    fn lowest_free(outstanding: &BTreeSet<u64>) -> u64 {
        (0u64..)
            .find(|i| !outstanding.contains(i))
            .expect("finite set")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random interleavings of alloc/reclaim/rewind against a
        /// BTreeSet-of-issued-indices reference model: every lease starts
        /// at the lowest free index (lowest-first), no index is ever
        /// issued twice while outstanding, and `outstanding()` /
        /// `next_index()` agree with the model after every step.
        ///
        /// Each op is a raw tuple `(kind, len, sel, off, n)` decoded at
        /// apply time — kinds 0–3 alloc `len`, 4–7 reclaim a random
        /// sub-range of a random currently held lease (so every reclaim
        /// is valid by construction), 8 rewinds. Reclaiming an interior
        /// sub-range splits the held lease, exercising fragment merge.
        #[test]
        fn allocator_matches_a_set_model(
            ops in prop::collection::vec(
                (0u32..9, 1u64..=8, any::<usize>(), any::<u32>(), any::<u32>()),
                1..120,
            ),
        ) {
            let mut a = LeaseAllocator::new();
            let mut outstanding: BTreeSet<u64> = BTreeSet::new();
            let mut held: Vec<IndexLease> = Vec::new();
            for (kind, len, sel, off_seed, len_seed) in ops {
                match kind {
                    0..=3 => {
                        let lease = a.alloc(len);
                        prop_assert_eq!(
                            lease.start,
                            lowest_free(&outstanding),
                            "allocations are lowest-first"
                        );
                        prop_assert!(lease.len >= 1, "leases are never empty");
                        prop_assert!(lease.len <= len, "leases never exceed the request");
                        for i in lease.start..lease.end() {
                            prop_assert!(outstanding.insert(i), "index {} double-issued", i);
                        }
                        held.push(lease);
                    }
                    4..=7 => {
                        if held.is_empty() {
                            continue;
                        }
                        let lease = held.swap_remove(sel % held.len());
                        let off = u64::from(off_seed) % lease.len;
                        let n = 1 + u64::from(len_seed) % (lease.len - off);
                        // Split the held lease around the reclaimed range;
                        // the pieces stay issued and reclaimable later.
                        if off > 0 {
                            held.push(IndexLease::new(lease.start, off));
                        }
                        let tail = lease.len - off - n;
                        if tail > 0 {
                            held.push(IndexLease::new(lease.start + off + n, tail));
                        }
                        a.reclaim(IndexLease::new(lease.start + off, n));
                        for i in lease.start + off..lease.start + off + n {
                            prop_assert!(outstanding.remove(&i), "index {} was not issued", i);
                        }
                    }
                    _ => {
                        a.rewind();
                        outstanding.clear();
                        held.clear();
                    }
                }
                prop_assert_eq!(a.outstanding(), outstanding.len() as u64);
                prop_assert_eq!(a.next_index(), lowest_free(&outstanding));
            }
        }
    }
}
