//! # aimc-parallel — deterministic scoped-thread worker pool
//!
//! The paper's platform computes 512 tile-MVMs concurrently; this crate
//! gives the functional simulators the same concurrency on the host. It is
//! a minimal data-parallel layer over [`std::thread::scope`] — no external
//! dependencies (the build environment has no registry access, so rayon is
//! not an option), no unsafe code outside the [`affinity`] syscall
//! wrappers, and one hard guarantee:
//!
//! > **The result of a parallel map is bit-identical to the serial map.**
//!
//! That holds because workers never share mutable state: each worker claims
//! items off a shared atomic counter, computes into worker-local storage,
//! and the per-item results are merged back **in item order** after the
//! scope joins. Work distribution (which worker computed which item) is
//! nondeterministic; the merged output is not. Anything order-sensitive —
//! floating-point reduction order, RNG streams — must therefore be keyed to
//! the *item index*, never to the worker; the `aimc-xbar` per-call noise
//! streams exist precisely so this property survives down the stack.
//!
//! ## Example
//! ```
//! use aimc_parallel::{map_indexed, Parallelism};
//! let xs = vec![1u64, 2, 3, 4, 5];
//! let serial = map_indexed(Parallelism::Serial, &xs, |i, &x| x * i as u64);
//! let threaded = map_indexed(Parallelism::Threads(4), &xs, |i, &x| x * i as u64);
//! assert_eq!(serial, threaded);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod affinity;

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// How many worker threads a parallel region may use.
///
/// `Serial` executes on the calling thread with no pool at all — it is the
/// reference semantics every threaded run must reproduce bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Run on the calling thread (the reference execution).
    Serial,
    /// Run on up to `n` worker threads (`Threads(0)` and `Threads(1)`
    /// degrade to serial execution).
    Threads(usize),
    /// Like [`Parallelism::Threads`], but worker `w` pins itself to CPU
    /// core `w mod available_cores` (see [`affinity`]) **before**
    /// allocating its per-worker scratch. Two effects, neither of which
    /// changes a single output bit:
    ///
    /// * the scheduler cannot migrate a worker mid-sweep, so its scratch
    ///   stays hot in the private caches of one core;
    /// * the scratch is first-touched on the core that will hammer it,
    ///   which on NUMA hosts places the pages in that core's local node.
    ///
    /// Pinning is best-effort: on non-Linux targets (or if the kernel
    /// rejects the mask) this behaves exactly like `Threads(n)`.
    PinnedThreads(usize),
}

impl Parallelism {
    /// One worker per available hardware thread, as reported by the OS
    /// (falls back to serial if the query fails).
    pub fn auto() -> Self {
        match std::thread::available_parallelism() {
            Ok(n) => Parallelism::Threads(n.get()),
            Err(_) => Parallelism::Serial,
        }
    }

    /// The number of workers a region would use for `items` work items
    /// (never more workers than items, never zero).
    pub fn workers_for(&self, items: usize) -> usize {
        match *self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) | Parallelism::PinnedThreads(n) => n.max(1).min(items.max(1)),
        }
    }

    /// Whether this setting can spawn worker threads at all.
    pub fn is_parallel(&self) -> bool {
        matches!(
            *self,
            Parallelism::Threads(n) | Parallelism::PinnedThreads(n) if n > 1
        )
    }

    /// Whether workers should pin themselves to cores.
    pub fn pins_workers(&self) -> bool {
        matches!(*self, Parallelism::PinnedThreads(n) if n > 1)
    }
}

impl Default for Parallelism {
    /// Serial — parallel execution is strictly opt-in.
    fn default() -> Self {
        Parallelism::Serial
    }
}

/// Maps `f` over `items`, preserving item order in the output.
///
/// `f` receives the item index alongside the item so callers can key
/// order-sensitive state (RNG streams, invocation counters) to the item
/// rather than to the worker.
pub fn map_indexed<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_with(par, items, || (), |(), i, x| f(i, x))
}

/// Fallible [`map_indexed`]: returns the error of the **lowest-indexed**
/// failing item (matching what a serial left-to-right loop would report),
/// regardless of which worker hit it first.
///
/// # Errors
/// The lowest-indexed `Err` produced by `f`, if any.
pub fn try_map_indexed<T, R, E, F>(par: Parallelism, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    try_map_with(par, items, || (), |(), i, x| f(i, x))
}

/// [`map_indexed`] with per-worker scratch state: `init` runs once per
/// worker (once total in serial mode) and the resulting scratch is reused
/// across every item that worker processes — the mechanism behind the
/// executors' reusable im2col/output buffers.
pub fn map_with<T, S, R, F, I>(par: Parallelism, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let out: Result<Vec<R>, Never> = try_map_with(par, items, init, |s, i, x| Ok(f(s, i, x)));
    match out {
        Ok(v) => v,
        Err(never) => match never {},
    }
}

/// Uninhabited error type for the infallible wrappers.
enum Never {}

/// Fallible [`map_with`] — the core primitive every other entry point
/// delegates to.
///
/// Workers claim **chunks** of item indices from a shared atomic cursor
/// (chunk ≈ `len / (workers · 4)`, at least 1): dynamic load-balancing
/// without one cursor bump per item, which matters when the per-item work
/// is tiny (a small tile's MVM sweep) and the fetch-add itself becomes the
/// contention point. Each worker stashes `(index, result)` pairs locally,
/// and the pairs are merged back in index order after the scope joins. On
/// error the remaining workers stop claiming new chunks, the partial
/// results are discarded, and the reported error is still exactly the
/// serial loop's first failure: claimed chunks form a contiguous prefix
/// and always run to completion, so the lowest-indexed recorded error
/// precedes every unevaluated item.
///
/// # Errors
/// The lowest-indexed `Err` produced by `f`, if any.
///
/// # Panics
/// Panics propagate from `f` (a panicking worker aborts the region, and
/// the panic is re-raised on the calling thread by scope join).
pub fn try_map_with<T, S, R, E, F, I>(
    par: Parallelism,
    items: &[T],
    init: I,
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> Result<R, E> + Sync,
{
    let workers = par.workers_for(items.len());
    if workers <= 1 || items.len() <= 1 {
        let mut scratch = init();
        let mut out = Vec::with_capacity(items.len());
        for (i, x) in items.iter().enumerate() {
            out.push(f(&mut scratch, i, x)?);
        }
        return Ok(out);
    }

    // Chunked claiming: ~4 chunks per worker balances load (a slow chunk
    // does not stall the others) against cursor contention (one fetch-add
    // per chunk, not per item).
    let chunk = (items.len() / (workers * 4)).max(1);
    // Under `PinnedThreads`, worker w pins to core w mod the core count
    // before first-touching its scratch. The serial path above never pins:
    // it runs on the caller's thread, whose placement is not ours to move.
    let pin_cores = if par.pins_workers() {
        std::thread::available_parallelism().map(|n| n.get()).ok()
    } else {
        None
    };
    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    // Each worker returns its locally collected (index, result) pairs; the
    // merge below restores item order deterministically.
    let worker_results: Vec<Vec<(usize, Result<R, E>)>> = std::thread::scope(|scope| {
        let (cursor, failed, init, f) = (&cursor, &failed, &init, &f);
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    if let Some(cores) = pin_cores {
                        affinity::pin_current_thread(w % cores);
                    }
                    let mut scratch = init();
                    let mut local: Vec<(usize, Result<R, E>)> = Vec::new();
                    loop {
                        // Once any worker errors, stop claiming promptly —
                        // results are discarded on error anyway, so draining
                        // the remaining items would be pure waste. A claimed
                        // chunk always runs to completion, though: that is
                        // what keeps the lowest-indexed-error guarantee
                        // (the chunk holding the serial-first failure was
                        // claimed before any later chunk could fail).
                        if failed.load(Ordering::Relaxed) {
                            break;
                        }
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items.len() {
                            break;
                        }
                        let end = (start + chunk).min(items.len());
                        for (i, item) in items.iter().enumerate().take(end).skip(start) {
                            let r = f(&mut scratch, i, item);
                            if r.is_err() {
                                failed.store(true, Ordering::Relaxed);
                            }
                            local.push((i, r));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut slots: Vec<Option<Result<R, E>>> = Vec::new();
    slots.resize_with(items.len(), || None);
    for (i, r) in worker_results.into_iter().flatten() {
        slots[i] = Some(r);
    }
    let mut out = Vec::with_capacity(items.len());
    for slot in slots {
        match slot {
            Some(Ok(r)) => out.push(r),
            // Lowest-indexed failure: slots are scanned in item order.
            Some(Err(e)) => return Err(e),
            // A worker bailed after an error before this item was claimed —
            // but an earlier slot must then hold that error, so scanning in
            // order never reaches an unclaimed slot. Defensive anyway:
            None => unreachable!("unclaimed item implies an earlier error"),
        }
    }
    Ok(out)
}

/// Runs `f` for each item (indexed), discarding results — a convenience for
/// side-effecting work whose output channel is already thread-safe (e.g.
/// bumping atomics); there is no shared mutable state beyond what `f`
/// captures.
pub fn for_each_indexed<T, F>(par: Parallelism, items: &[T], f: F)
where
    T: Sync,
    F: Fn(usize, &T) + Sync,
{
    let _: Vec<()> = map_indexed(par, items, |i, x| f(i, x));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_and_threaded_agree_in_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let serial = map_indexed(Parallelism::Serial, &xs, |i, &x| x * 3 + i as u64);
        for n in [2, 4, 8] {
            let par = map_indexed(Parallelism::Threads(n), &xs, |i, &x| x * 3 + i as u64);
            assert_eq!(serial, par, "Threads({n}) diverged");
        }
    }

    #[test]
    fn threads_zero_and_one_degrade_to_serial() {
        let xs = vec![1, 2, 3];
        assert_eq!(Parallelism::Threads(0).workers_for(3), 1);
        assert_eq!(Parallelism::Threads(1).workers_for(3), 1);
        assert!(!Parallelism::Threads(1).is_parallel());
        assert!(Parallelism::Threads(2).is_parallel());
        assert!(!Parallelism::Serial.is_parallel());
        let out = map_indexed(Parallelism::Threads(0), &xs, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn never_more_workers_than_items() {
        assert_eq!(Parallelism::Threads(8).workers_for(3), 3);
        assert_eq!(Parallelism::Threads(8).workers_for(0), 1);
        assert_eq!(Parallelism::Serial.workers_for(100), 1);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let xs: Vec<u32> = vec![];
        let out = map_indexed(Parallelism::Threads(4), &xs, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn scratch_is_initialized_at_most_once_per_worker() {
        let inits = AtomicUsize::new(0);
        let xs: Vec<u32> = (0..100).collect();
        let out = map_with(
            Parallelism::Threads(4),
            &xs,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<u32>::new()
            },
            |scratch, _, &x| {
                scratch.push(x); // scratch accumulates across items
                scratch.len()
            },
        );
        assert_eq!(out.len(), 100);
        let n = inits.load(Ordering::Relaxed);
        assert!(n <= 4, "scratch initialized {n} times for 4 workers");
        // Scratch persisted across items: some worker saw more than one.
        assert!(out.iter().any(|&len| len > 1));
    }

    #[test]
    fn error_reported_is_the_lowest_index() {
        let xs: Vec<u32> = (0..64).collect();
        for par in [Parallelism::Serial, Parallelism::Threads(4)] {
            let r: Result<Vec<u32>, usize> =
                try_map_indexed(par, &xs, |i, &x| if x % 10 == 7 { Err(i) } else { Ok(x) });
            assert_eq!(r.unwrap_err(), 7, "{par:?}");
        }
    }

    #[test]
    fn try_map_success_matches_serial() {
        let xs: Vec<i64> = (0..257).collect();
        let f = |i: usize, &x: &i64| -> Result<i64, ()> { Ok(x * x - i as i64) };
        let serial = try_map_indexed(Parallelism::Serial, &xs, f).unwrap();
        let par = try_map_indexed(Parallelism::Threads(3), &xs, f).unwrap();
        assert_eq!(serial, par);
    }

    #[test]
    fn for_each_visits_every_item_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        let xs: Vec<usize> = (0..50).collect();
        for_each_indexed(Parallelism::Threads(4), &xs, |i, _| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    /// Chunked claiming must cover every index exactly once for lengths
    /// that don't divide evenly into chunks (and for fewer items than
    /// workers, where the chunk degrades to 1).
    #[test]
    fn chunked_claiming_covers_ragged_lengths() {
        for len in [1usize, 2, 3, 5, 7, 15, 16, 17, 63, 64, 65, 1001] {
            let xs: Vec<usize> = (0..len).collect();
            let out = map_indexed(Parallelism::Threads(4), &xs, |i, &x| {
                assert_eq!(i, x);
                x
            });
            assert_eq!(out, xs, "len {len} lost or reordered items");
        }
    }

    /// The lowest-index-error guarantee survives chunked claiming even when
    /// failures land in different chunks: the chunk holding the serial-first
    /// failure is always claimed (chunks are claimed in index order) and
    /// always runs to completion.
    #[test]
    fn lowest_error_wins_across_chunks() {
        let xs: Vec<u32> = (0..997).collect();
        for par in [Parallelism::Serial, Parallelism::Threads(7)] {
            let r: Result<Vec<u32>, usize> =
                try_map_indexed(par, &xs, |i, &x| if x % 13 == 4 { Err(i) } else { Ok(x) });
            assert_eq!(r.unwrap_err(), 4, "{par:?}");
        }
    }

    #[test]
    fn auto_is_at_least_one_worker() {
        let p = Parallelism::auto();
        assert!(p.workers_for(usize::MAX) >= 1);
    }

    /// Pinning is a placement hint, never a semantic one: the pinned pool
    /// must produce exactly the serial map's output.
    #[test]
    fn pinned_threads_agree_with_serial() {
        let xs: Vec<u64> = (0..500).collect();
        let serial = map_indexed(Parallelism::Serial, &xs, |i, &x| x * 7 + i as u64);
        for n in [2, 4] {
            let pinned = map_indexed(Parallelism::PinnedThreads(n), &xs, |i, &x| x * 7 + i as u64);
            assert_eq!(serial, pinned, "PinnedThreads({n}) diverged");
        }
    }

    #[test]
    fn pinned_threads_degrade_like_threads() {
        assert_eq!(Parallelism::PinnedThreads(0).workers_for(3), 1);
        assert_eq!(Parallelism::PinnedThreads(1).workers_for(3), 1);
        assert_eq!(Parallelism::PinnedThreads(8).workers_for(3), 3);
        assert!(!Parallelism::PinnedThreads(1).is_parallel());
        assert!(Parallelism::PinnedThreads(2).is_parallel());
        // Only a genuinely multi-worker pinned setting pins anything.
        assert!(Parallelism::PinnedThreads(2).pins_workers());
        assert!(!Parallelism::PinnedThreads(1).pins_workers());
        assert!(!Parallelism::Threads(8).pins_workers());
        assert!(!Parallelism::Serial.pins_workers());
    }
}
