//! Best-effort CPU affinity for worker threads.
//!
//! [`Parallelism::PinnedThreads`](crate::Parallelism::PinnedThreads) pins
//! each worker to one core so the hot MVM loops keep their scratch in one
//! core's private caches and first-touch their pages on the core that will
//! use them. The build environment has no registry access, so `libc` is
//! not an option; on Linux the `sched_setaffinity` syscall is issued
//! directly. Everywhere else pinning is a documented no-op — the engine's
//! results never depend on placement, only its wall-clock does.
//!
//! This is the only unsafe code in the workspace; it is confined to the
//! two `#[allow(unsafe_code)]` syscall wrappers below, each of which
//! passes the kernel a pointer to a live stack buffer and nothing else.

/// Width of the CPU mask passed to the kernel: 1024 bits, the historical
/// `CPU_SETSIZE` of glibc — comfortably above any core index the pool
/// derives from `available_parallelism`.
const MASK_WORDS: usize = 16;

/// Pins the calling thread to `cpu` (taken modulo the 1024-bit mask
/// width). Returns `true` if the kernel accepted the mask.
///
/// On non-Linux targets, or Linux targets other than x86-64/AArch64,
/// this is a no-op returning `false`; callers treat pinning as a hint.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub fn pin_current_thread(cpu: usize) -> bool {
    let mut mask = [0u64; MASK_WORDS];
    let bit = cpu % (MASK_WORDS * 64);
    mask[bit / 64] |= 1u64 << (bit % 64);
    // pid 0 = the calling thread.
    sched_setaffinity_raw(0, core::mem::size_of_val(&mask), mask.as_ptr()) == 0
}

/// No-op fallback: placement stays with the OS scheduler.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub fn pin_current_thread(_cpu: usize) -> bool {
    false
}

/// `sched_setaffinity(2)` — syscall 203 on x86-64.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
#[allow(unsafe_code)]
fn sched_setaffinity_raw(pid: usize, len: usize, mask: *const u64) -> isize {
    let ret: isize;
    // SAFETY: the kernel reads `len` bytes from `mask`, which points to a
    // live, fully initialized `[u64; MASK_WORDS]` on the caller's stack;
    // the syscall clobbers only rcx/r11 (declared) and writes nothing.
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 203isize => ret,
            in("rdi") pid,
            in("rsi") len,
            in("rdx") mask,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, preserves_flags)
        );
    }
    ret
}

/// `sched_setaffinity(2)` — syscall 122 on AArch64.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
#[allow(unsafe_code)]
fn sched_setaffinity_raw(pid: usize, len: usize, mask: *const u64) -> isize {
    let ret: isize;
    // SAFETY: as in the x86-64 wrapper — the kernel only reads `len`
    // bytes from the live stack buffer behind `mask`.
    unsafe {
        core::arch::asm!(
            "svc #0",
            in("x8") 122usize,
            inlateout("x0") pid as isize => ret,
            in("x1") len,
            in("x2") mask,
            options(nostack)
        );
    }
    ret
}

#[cfg(test)]
mod tests {
    use super::*;

    /// On Linux the kernel must accept a mask naming core 0 (which always
    /// exists); pinning is exercised from a scoped thread so the test
    /// runner's own thread keeps its placement.
    #[test]
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    fn kernel_accepts_a_core_zero_mask() {
        let ok = std::thread::scope(|s| s.spawn(|| pin_current_thread(0)).join().unwrap());
        assert!(ok, "sched_setaffinity rejected {{core 0}}");
    }

    /// Out-of-range indices wrap into the mask instead of producing an
    /// empty set (which the kernel would reject with EINVAL).
    #[test]
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    fn large_indices_wrap_into_the_mask() {
        // 3 × the mask width wraps back to core 0, which always exists.
        let ok = std::thread::scope(|s| {
            s.spawn(|| pin_current_thread(MASK_WORDS * 64 * 3))
                .join()
                .unwrap()
        });
        assert!(ok);
    }
}
