//! Property-based tests of the interconnect's timing discipline.

use aimc_noc::{Endpoint, Noc, NocConfig, TxnKind};
use aimc_sim::SimTime;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Zero-load latency is monotone in payload size and never below the
    /// pure router-latency floor.
    #[test]
    fn zero_load_monotone_in_bytes(
        src in 0usize..512,
        dst in 0usize..512,
        bytes in 1usize..100_000,
    ) {
        let noc = Noc::new(NocConfig::paper_512());
        let a = noc.zero_load_latency(TxnKind::Write, Endpoint::Cluster(src), Endpoint::Cluster(dst), bytes);
        let b = noc.zero_load_latency(TxnKind::Write, Endpoint::Cluster(src), Endpoint::Cluster(dst), bytes * 2);
        prop_assert!(b >= a, "{b} < {a}");
        prop_assert!(a >= SimTime::from_ns(8), "two L1 hops minimum");
    }

    /// Completion times under load are never earlier than zero-load, and
    /// repeated transfers on one path are nondecreasing in completion.
    #[test]
    fn loaded_never_beats_zero_load(
        pairs in prop::collection::vec((0usize..512, 0usize..512, 64usize..8192), 1..40),
    ) {
        let mut noc = Noc::new(NocConfig::paper_512());
        let zl_noc = Noc::new(NocConfig::paper_512());
        let mut t = 0u64;
        for (src, dst, bytes) in pairs {
            if src == dst { continue; }
            t += 10;
            let now = SimTime::from_ns(t);
            let zl = zl_noc.zero_load_latency(TxnKind::Write, Endpoint::Cluster(src), Endpoint::Cluster(dst), bytes);
            let done = noc.transfer(now, TxnKind::Write, Endpoint::Cluster(src), Endpoint::Cluster(dst), bytes);
            prop_assert!(done >= now + zl.saturating_sub(SimTime::ZERO) || done >= now,
                "completion {done} earlier than zero-load {zl} from {now}");
            prop_assert!(done >= now);
        }
    }

    /// HBM accounting: bytes through the controller equal the sum of
    /// injected HBM payloads; busy time is at least bytes/width cycles.
    #[test]
    fn hbm_accounting_is_conservative(
        sizes in prop::collection::vec(1usize..4096, 1..30),
    ) {
        let mut noc = Noc::new(NocConfig::paper_512());
        let mut t = 0u64;
        let mut total = 0u64;
        for (i, bytes) in sizes.iter().enumerate() {
            t += 100;
            noc.transfer(
                SimTime::from_ns(t),
                TxnKind::Write,
                Endpoint::Cluster(i % 512),
                Endpoint::Hbm,
                *bytes,
            );
            total += *bytes as u64;
        }
        prop_assert_eq!(noc.hbm_bytes(), total);
        let min_busy_cycles = total.div_ceil(64);
        prop_assert!(noc.hbm_busy() >= SimTime::from_ns(min_busy_cycles));
    }

    /// The common-ancestor level is symmetric and respects subtree nesting.
    #[test]
    fn ancestor_level_symmetry(a in 0usize..512, b in 0usize..512) {
        let cfg = NocConfig::paper_512();
        let ab = cfg.common_ancestor_level(a, b);
        let ba = cfg.common_ancestor_level(b, a);
        prop_assert_eq!(ab, ba);
        prop_assert!((1..=4).contains(&ab));
        if a / 4 == b / 4 {
            prop_assert_eq!(ab, 1);
        }
        if a / 64 != b / 64 {
            prop_assert_eq!(ab, 4);
        }
    }
}
