//! # aimc-noc — hierarchical AXI interconnect and HBM model
//!
//! Implements the scalable quadrant-tree network of the paper (Sec. II-3,
//! Fig. 1B/D): parametric routers with configurable data width, latency and
//! fan-out, arranged in levels by *quadrant factors* — Table I uses
//! `(HBM, wrapper, L3, L2, L1) = (1, 8, 4, 4, 4)` for 512 clusters — plus a
//! wrapper bridging to the off-chip HBM controller.
//!
//! Transactions (DMA bursts) are modeled with a reservation discipline that
//! captures per-hop latency and FIFO bandwidth contention on every directed
//! link; see [`Noc`] for the details and fidelity argument.
//!
//! ## Example
//! ```
//! use aimc_noc::{Endpoint, Noc, NocConfig, TxnKind};
//! use aimc_sim::SimTime;
//!
//! let mut noc = Noc::new(NocConfig::paper_512());
//! // Stream a 4 KiB tile from cluster 3 to cluster 200 (different L3 quads).
//! let done = noc.transfer(
//!     SimTime::ZERO,
//!     TxnKind::Write,
//!     Endpoint::Cluster(3),
//!     Endpoint::Cluster(200),
//!     4096,
//! );
//! assert!(done > SimTime::from_ns(64)); // 64 beats + 8 router hops
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod fabric;
mod network;
mod topology;

pub use config::{HbmConfig, NocConfig};
pub use fabric::{Fabric, FabricReport, LinkReport};
pub use network::{Endpoint, LinkId, LinkStats, Noc, TxnKind};
pub use topology::{Hop, Route, Topology};
