//! Hop-by-hop transfer engine: in-flight messages flying down explicit
//! [`Route`](crate::Route)s one event at a time.
//!
//! ## Relationship to the reservation engine
//!
//! [`crate::Noc`] reserves every link of a route analytically the instant a
//! transaction is injected — O(hops), no internal events, but it serializes
//! contended links in *injection* order. The [`Fabric`] instead advances a
//! message hop by hop: the burst head arrives at a link, joins that link's
//! FIFO, begins service when the link frees up, and reaches the next hop a
//! router latency later (virtual cut-through). Contended links therefore
//! serialize in *physical arrival* order.
//!
//! Both engines share one routing and timing model ([`crate::Topology`]
//! plus the HBM controller server), so:
//!
//! * on contention-free routes, and whenever contenders reach a shared link
//!   in injection order (e.g. serialized streams between one source and one
//!   destination), completion times are **bit-identical**;
//! * when the engines order two contenders differently — the reservation
//!   engine books a link for a transaction whose head is still several hops
//!   away — each inverted pair diverges by at most the arrival skew plus one
//!   burst occupancy, which for the paper's single-beat control traffic is
//!   within one router latency.
//!
//! Tests in this module pin both properties, keeping the cheap reservation
//! engine an honest oracle for the event-driven one.
//!
//! ## Determinism
//!
//! Events are drained from an [`OrderedEventQueue`] keyed by
//! `(time, event, insertion seq)` where link-free events sort before
//! arrivals and arrivals sort by `(link, message id)`. Message ids are
//! assigned in injection order. Two runs that inject the same transactions
//! in the same order therefore produce bit-identical completions and link
//! statistics, regardless of how the caller interleaves
//! [`Fabric::advance_before`] windows.

use crate::config::NocConfig;
use crate::network::{Endpoint, LinkId, TxnKind};
use crate::topology::Topology;
use aimc_sim::{Cycles, OrderedEventQueue, SimTime};
use std::collections::VecDeque;

/// One step of an in-flight message: either a (possibly queued) link
/// crossing, or a pure service delay with no bandwidth contention.
#[derive(Debug, Clone, Copy)]
struct MsgHop {
    /// Dense link index (`Topology` order; `n_links` = the HBM controller),
    /// or `None` for a pure delay (remote TCDM access service).
    link: Option<u32>,
    /// Payload bytes this leg carries (for occupancy and statistics).
    bytes: usize,
    /// Time the link is occupied serving the burst.
    occ: SimTime,
    /// Head-of-burst delay from service start to the next hop.
    lat: SimTime,
    /// If set, the *tail* (service start + latency + occupancy) propagates
    /// to the next hop instead of the head — used on the last hop of a
    /// payload leg, where the consumer needs the full burst.
    tail_to_next: bool,
}

#[derive(Debug)]
struct Msg {
    hops: Vec<MsgHop>,
    next: usize,
    tag: u64,
}

#[derive(Debug, Clone, Default)]
struct FabLink {
    free_at: SimTime,
    busy_ps: u64,
    bytes: u64,
    transactions: u64,
    waiting: VecDeque<u32>,
    queued: u32,
    peak_queued: u32,
}

/// Fabric events. Variant order matters: at equal times a link must free
/// *before* new arrivals join its FIFO, so a queued burst starts at exactly
/// the instant the link becomes available.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum FabEv {
    /// A link finished serving a burst; the head of its FIFO may start.
    Free { link: u32 },
    /// A message head arrived at `link` and joins its FIFO.
    Arrive { link: u32, msg: u32 },
}

/// Usage snapshot of one directed link (or the HBM controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkReport {
    /// Which link this row describes.
    pub id: LinkId,
    /// Total time the link was occupied by payloads.
    pub busy: SimTime,
    /// Total payload bytes carried.
    pub bytes: u64,
    /// Bursts served.
    pub transactions: u64,
    /// Peak demand: the maximum number of bursts simultaneously queued on
    /// the link, including the one about to enter service.
    pub peak_queued: u32,
}

/// Per-link utilization and conservation totals of one fabric run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FabricReport {
    /// One row per directed link in dense topology order, then the HBM
    /// controller last.
    pub links: Vec<LinkReport>,
    /// Transactions injected.
    pub injected: u64,
    /// Transactions fully delivered.
    pub completed: u64,
    /// Bytes the injected transactions were routed across: the sum over
    /// every link hop of its leg payload. Equals [`Self::link_bytes`] once
    /// the fabric has drained — each booked hop was served exactly once.
    pub routed_bytes: u64,
    /// Bytes actually served, summed over all links.
    pub link_bytes: u64,
    /// Fabric events processed.
    pub events: u64,
}

impl FabricReport {
    /// The row for `id`, if that link exists in the topology.
    pub fn link(&self, id: LinkId) -> Option<&LinkReport> {
        self.links.iter().find(|l| l.id == id)
    }

    /// Aggregate busy time of all tree links at `level` (1-based).
    pub fn level_busy(&self, level: usize) -> SimTime {
        let ps: u64 = self
            .links
            .iter()
            .filter(|l| matches!(l.id, LinkId::Up { level: lv, .. } | LinkId::Down { level: lv, .. } if lv == level))
            .map(|l| l.busy.as_ps())
            .sum();
        SimTime::from_ps(ps)
    }

    /// Aggregate bytes over all tree links at `level` (1-based).
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.links
            .iter()
            .filter(|l| matches!(l.id, LinkId::Up { level: lv, .. } | LinkId::Down { level: lv, .. } if lv == level))
            .map(|l| l.bytes)
            .sum()
    }

    /// The `n` busiest links, descending by busy time (ties keep dense
    /// topology order, so the result is deterministic).
    pub fn hottest(&self, n: usize) -> Vec<&LinkReport> {
        let mut rows: Vec<&LinkReport> = self.links.iter().filter(|l| l.transactions > 0).collect();
        rows.sort_by_key(|l| std::cmp::Reverse(l.busy));
        rows.truncate(n);
        rows
    }
}

/// The event-driven hop-by-hop interconnect engine.
///
/// Transactions enter with [`Fabric::inject`] (in nondecreasing time order)
/// and complete asynchronously; [`Fabric::advance_before`] runs the event
/// loop up to a horizon and returns `(completion_time, tag)` pairs, which is
/// what lets a windowed parallel simulation overlap NoC flight time with
/// compute events.
///
/// # Examples
/// ```
/// use aimc_noc::{Endpoint, Fabric, NocConfig, TxnKind};
/// use aimc_sim::SimTime;
/// let mut fab = Fabric::new(NocConfig::paper_512());
/// fab.inject(SimTime::ZERO, TxnKind::Write, Endpoint::Cluster(0), Endpoint::Cluster(1), 256, 7);
/// let done = fab.advance_all();
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].1, 7);
/// assert!(done[0].0 > SimTime::ZERO);
/// ```
#[derive(Debug)]
pub struct Fabric {
    topo: Topology,
    /// Dense tree + HBM channel links, plus the controller at index
    /// `topo.n_links()`.
    links: Vec<FabLink>,
    msgs: Vec<Msg>,
    queue: OrderedEventQueue<FabEv>,
    completions: Vec<(SimTime, u64)>,
    completed: u64,
    routed_bytes: u64,
    events: u64,
}

impl Fabric {
    /// Builds the fabric for `cfg`.
    ///
    /// # Panics
    /// Panics if the configuration fails [`NocConfig::validate`].
    pub fn new(cfg: NocConfig) -> Self {
        let topo = Topology::new(cfg);
        let links = vec![FabLink::default(); topo.n_links() + 1];
        Fabric {
            topo,
            links,
            msgs: Vec::new(),
            queue: OrderedEventQueue::new(),
            completions: Vec::new(),
            completed: 0,
            routed_bytes: 0,
            events: 0,
        }
    }

    /// The topology the fabric routes over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    fn ctrl_index(&self) -> usize {
        self.topo.n_links()
    }

    fn cycles(&self, n: u64) -> SimTime {
        self.topo.config().frequency.cycles_to_time(Cycles(n))
    }

    /// The HBM controller server: occupies row overhead plus the burst
    /// beats, and makes the data available a full occupancy later
    /// (`latency == occupancy`, mirroring `Noc::hbm_service`).
    fn ctrl_hop(&self, bytes: usize) -> MsgHop {
        let hbm = &self.topo.config().hbm;
        let occ_cycles = hbm.row_overhead_cycles + bytes.max(1).div_ceil(hbm.width_bytes) as u64;
        let occ = self.cycles(occ_cycles);
        MsgHop {
            link: Some(self.ctrl_index() as u32),
            bytes,
            occ,
            lat: occ,
            tail_to_next: false,
        }
    }

    /// Remote L1 read service: a couple of cycles of TCDM access, no
    /// bandwidth contention.
    fn tcdm_hop(&self) -> MsgHop {
        MsgHop {
            link: None,
            bytes: 0,
            occ: SimTime::ZERO,
            lat: self.cycles(2),
            tail_to_next: false,
        }
    }

    /// Appends the link hops of one payload leg. When `tail_last` is set the
    /// leg's final hop propagates the burst tail (head + occupancy);
    /// otherwise the head continues directly into the next hop of the
    /// transaction (a write's HBM-bound payload hands its *head* to the
    /// controller, which then charges the full burst itself).
    fn payload_hops(
        &self,
        out: &mut Vec<MsgHop>,
        from: Endpoint,
        to: Endpoint,
        bytes: usize,
        tail_last: bool,
    ) {
        let route = self.topo.route(from, to);
        let n = route.hops.len();
        for (i, h) in route.hops.iter().enumerate() {
            out.push(MsgHop {
                link: Some(h.index as u32),
                bytes,
                occ: self.cycles(bytes.max(1).div_ceil(h.width_bytes) as u64),
                lat: self.cycles(h.latency_cycles),
                tail_to_next: tail_last && i == n - 1,
            });
        }
    }

    /// Builds the full hop sequence of one transaction, mirroring the leg
    /// structure of `Noc::transfer` exactly.
    fn build_hops(&self, kind: TxnKind, src: Endpoint, dst: Endpoint, bytes: usize) -> Vec<MsgHop> {
        let protocol = self.topo.config().model_protocol_overhead;
        let mut hops = Vec::new();
        match kind {
            TxnKind::Write => {
                if src == Endpoint::Hbm {
                    hops.push(self.ctrl_hop(bytes));
                }
                let to_hbm = dst == Endpoint::Hbm;
                self.payload_hops(&mut hops, src, dst, bytes, !to_hbm);
                if to_hbm {
                    hops.push(self.ctrl_hop(bytes));
                }
                if protocol {
                    // 1-beat response back to the initiator.
                    self.payload_hops(&mut hops, dst, src, 1, true);
                }
            }
            TxnKind::Read => {
                if protocol {
                    // 1-beat request to the target.
                    self.payload_hops(&mut hops, src, dst, 1, true);
                }
                if dst == Endpoint::Hbm {
                    hops.push(self.ctrl_hop(bytes));
                } else {
                    hops.push(self.tcdm_hop());
                }
                self.payload_hops(&mut hops, dst, src, bytes, true);
            }
        }
        hops
    }

    /// Injects one transaction whose burst enters the network at `t`, to be
    /// reported back as `(completion_time, tag)` by the advance methods.
    ///
    /// Injections must be in nondecreasing order with respect to already
    /// processed events (`t` may not be earlier than the last horizon the
    /// fabric advanced past).
    ///
    /// # Panics
    /// Panics if a cluster index is out of range or `t` violates causality.
    pub fn inject(
        &mut self,
        t: SimTime,
        kind: TxnKind,
        src: Endpoint,
        dst: Endpoint,
        bytes: usize,
        tag: u64,
    ) {
        let hops = self.build_hops(kind, src, dst, bytes);
        self.routed_bytes += hops
            .iter()
            .filter(|h| h.link.is_some())
            .map(|h| h.bytes as u64)
            .sum::<u64>();
        let id = self.msgs.len() as u32;
        self.msgs.push(Msg { hops, next: 0, tag });
        self.dispatch(id as usize, t);
    }

    /// Moves a message from its current hop onward: skips through pure
    /// delays, then either schedules the next link arrival or completes.
    fn dispatch(&mut self, mid: usize, mut t: SimTime) {
        loop {
            let next = self.msgs[mid].next;
            match self.msgs[mid].hops.get(next).copied() {
                None => {
                    self.completed += 1;
                    let tag = self.msgs[mid].tag;
                    // The hop list is dead weight once delivered.
                    self.msgs[mid].hops = Vec::new();
                    self.completions.push((t, tag));
                    return;
                }
                Some(hop) => match hop.link {
                    Some(link) => {
                        self.queue.push(
                            t,
                            FabEv::Arrive {
                                link,
                                msg: mid as u32,
                            },
                        );
                        return;
                    }
                    None => {
                        t += hop.lat;
                        self.msgs[mid].next += 1;
                    }
                },
            }
        }
    }

    /// Starts serving the head of `link`'s FIFO at `now`, if any.
    fn start_service(&mut self, link: usize, now: SimTime) {
        let Some(msg) = self.links[link].waiting.pop_front() else {
            return;
        };
        let mid = msg as usize;
        let hop = self.msgs[mid].hops[self.msgs[mid].next];
        let l = &mut self.links[link];
        l.queued -= 1;
        l.busy_ps += hop.occ.as_ps();
        l.bytes += hop.bytes as u64;
        l.transactions += 1;
        l.free_at = now + hop.occ;
        self.queue
            .push(l.free_at, FabEv::Free { link: link as u32 });
        let depart = if hop.tail_to_next {
            now + hop.lat + hop.occ
        } else {
            now + hop.lat
        };
        self.msgs[mid].next += 1;
        self.dispatch(mid, depart);
    }

    fn handle(&mut self, t: SimTime, ev: FabEv) {
        self.events += 1;
        match ev {
            FabEv::Free { link } => {
                let link = link as usize;
                if !self.links[link].waiting.is_empty() && self.links[link].free_at <= t {
                    self.start_service(link, t);
                }
            }
            FabEv::Arrive { link, msg } => {
                let li = link as usize;
                let l = &mut self.links[li];
                l.queued += 1;
                l.peak_queued = l.peak_queued.max(l.queued);
                l.waiting.push_back(msg);
                if l.free_at <= t {
                    self.start_service(li, t);
                }
            }
        }
    }

    /// Runs the event loop on all events strictly before `horizon` and
    /// returns the transactions that completed, as `(time, tag)` pairs in
    /// deterministic event order.
    pub fn advance_before(&mut self, horizon: SimTime) -> Vec<(SimTime, u64)> {
        while let Some((t, ev)) = self.queue.pop_before(horizon) {
            self.handle(t, ev);
        }
        std::mem::take(&mut self.completions)
    }

    /// Drains every remaining event and returns the completions.
    pub fn advance_all(&mut self) -> Vec<(SimTime, u64)> {
        while let Some((t, ev)) = self.queue.pop() {
            self.handle(t, ev);
        }
        std::mem::take(&mut self.completions)
    }

    /// Time of the next pending fabric event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Whether every injected transaction has been delivered.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Transactions injected so far.
    pub fn transactions(&self) -> u64 {
        self.msgs.len() as u64
    }

    /// Total busy time of the HBM controller.
    pub fn hbm_busy(&self) -> SimTime {
        SimTime::from_ps(self.links[self.ctrl_index()].busy_ps)
    }

    /// Total bytes that crossed the HBM controller.
    pub fn hbm_bytes(&self) -> u64 {
        self.links[self.ctrl_index()].bytes
    }

    /// Per-link utilization, peak demand and conservation totals.
    pub fn report(&self) -> FabricReport {
        let ctrl = self.ctrl_index();
        let links = (0..=ctrl)
            .map(|i| {
                let id = if i == ctrl {
                    LinkId::HbmCtrl
                } else {
                    self.topo.link_id(i)
                };
                let l = &self.links[i];
                LinkReport {
                    id,
                    busy: SimTime::from_ps(l.busy_ps),
                    bytes: l.bytes,
                    transactions: l.transactions,
                    peak_queued: l.peak_queued,
                }
            })
            .collect();
        FabricReport {
            links,
            injected: self.msgs.len() as u64,
            completed: self.completed,
            routed_bytes: self.routed_bytes,
            link_bytes: self.links.iter().map(|l| l.bytes).sum(),
            events: self.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Noc;

    fn pairs() -> Vec<(TxnKind, Endpoint, Endpoint, usize)> {
        use Endpoint::*;
        vec![
            (TxnKind::Write, Cluster(0), Cluster(1), 64),
            (TxnKind::Write, Cluster(0), Cluster(1), 640),
            (TxnKind::Write, Cluster(0), Cluster(400), 256),
            (TxnKind::Write, Cluster(5), Cluster(5), 64),
            (TxnKind::Write, Cluster(3), Hbm, 4096),
            (TxnKind::Write, Hbm, Cluster(7), 4096),
            (TxnKind::Read, Cluster(0), Hbm, 64),
            (TxnKind::Read, Cluster(0), Cluster(100), 256),
            (TxnKind::Read, Cluster(511), Hbm, 1),
        ]
    }

    #[test]
    fn contention_free_matches_reservation_exactly() {
        for protocol in [true, false] {
            for (kind, src, dst, bytes) in pairs() {
                let mut cfg = NocConfig::paper_512();
                cfg.model_protocol_overhead = protocol;
                let mut noc = Noc::new(cfg.clone());
                let mut fab = Fabric::new(cfg);
                let t0 = SimTime::from_ns(11);
                let expect = noc.transfer(t0, kind, src, dst, bytes);
                fab.inject(t0, kind, src, dst, bytes, 42);
                let done = fab.advance_all();
                assert_eq!(
                    done,
                    vec![(expect, 42)],
                    "{kind:?} {src} -> {dst} ({bytes} B, protocol={protocol})"
                );
                assert!(fab.is_idle());
            }
        }
    }

    #[test]
    fn serialized_stream_matches_reservation_exactly() {
        // Back-to-back bursts between one source and one destination reach
        // every shared link in injection order, so the FIFO discipline and
        // the reservation discipline agree bit for bit.
        let mut noc = Noc::new(NocConfig::paper_512());
        let mut fab = Fabric::new(NocConfig::paper_512());
        let mut expected = Vec::new();
        for i in 0..10u64 {
            let t = SimTime::from_ns(2 * i);
            let bytes = 64 * 100; // 100-beat bursts guarantee overlap
            expected.push((
                noc.transfer(
                    t,
                    TxnKind::Write,
                    Endpoint::Cluster(0),
                    Endpoint::Cluster(9),
                    bytes,
                ),
                i,
            ));
            fab.inject(
                t,
                TxnKind::Write,
                Endpoint::Cluster(0),
                Endpoint::Cluster(9),
                bytes,
                i,
            );
        }
        let mut done = fab.advance_all();
        done.sort_by_key(|&(_, tag)| tag);
        expected.sort_by_key(|&(_, tag)| tag);
        assert_eq!(done, expected);
    }

    #[test]
    fn hbm_stream_matches_reservation_exactly() {
        let mut noc = Noc::new(NocConfig::paper_512());
        let mut fab = Fabric::new(NocConfig::paper_512());
        let mut expected = Vec::new();
        for i in 0..8u64 {
            let t = SimTime::from_ns(5 * i);
            expected.push((
                noc.transfer(
                    t,
                    TxnKind::Write,
                    Endpoint::Cluster(16),
                    Endpoint::Hbm,
                    2048,
                ),
                i,
            ));
            fab.inject(
                t,
                TxnKind::Write,
                Endpoint::Cluster(16),
                Endpoint::Hbm,
                2048,
                i,
            );
        }
        let mut done = fab.advance_all();
        done.sort_by_key(|&(_, tag)| tag);
        assert_eq!(done, expected);
        assert_eq!(fab.hbm_busy(), noc.hbm_busy());
        assert_eq!(fab.hbm_bytes(), noc.hbm_bytes());
    }

    #[test]
    fn equal_depth_contention_matches_reservation_exactly() {
        // Clusters 0 and 4 converge on cluster 8's down links after the
        // same number of hops, so physical arrival order equals injection
        // order and the engines stay bit-identical even under contention.
        let mut noc = Noc::new(NocConfig::paper_512());
        let mut fab = Fabric::new(NocConfig::paper_512());
        let mut expected = Vec::new();
        for (i, src) in [0usize, 4, 0, 4, 0, 4].iter().enumerate() {
            let t = SimTime::from_ns(i as u64);
            expected.push((
                noc.transfer(
                    t,
                    TxnKind::Write,
                    Endpoint::Cluster(*src),
                    Endpoint::Cluster(8),
                    64 * 20,
                ),
                i as u64,
            ));
            fab.inject(
                t,
                TxnKind::Write,
                Endpoint::Cluster(*src),
                Endpoint::Cluster(8),
                64 * 20,
                i as u64,
            );
        }
        let mut done = fab.advance_all();
        done.sort_by_key(|&(_, tag)| tag);
        assert_eq!(done, expected);
    }

    #[test]
    fn inverted_contention_diverges_by_at_most_one_router_latency() {
        // Cluster 1 starts 4 hops from cluster 4's L1 down link; cluster 5
        // only 2. Injecting the far burst first makes the reservation engine
        // book the shared link in injection order even though the near burst
        // physically arrives first. With single-beat payloads the inversion
        // penalty (arrival skew + one occupancy) stays within one router
        // latency — the fidelity bound the reservation engine documents.
        let cfg = NocConfig::paper_512();
        let router_latency = cfg
            .frequency
            .cycles_to_time(Cycles(cfg.router_latency_cycles[0]));
        let mut noc = Noc::new(cfg.clone());
        let mut fab = Fabric::new(cfg);
        // Far: c1 -> c4 (up1, up2, down2, down1). Near: c5 -> c4 (up1, down1).
        // Far head reaches down1(4) at t0 + 12 cycles; near at t_near + 4.
        // t_near = t0 + 7 cycles puts the near arrival 1 cycle early.
        let t0 = SimTime::ZERO;
        let t_near = SimTime::from_ns(7);
        let r_far = noc.transfer(
            t0,
            TxnKind::Write,
            Endpoint::Cluster(1),
            Endpoint::Cluster(4),
            64,
        );
        let r_near = noc.transfer(
            t_near,
            TxnKind::Write,
            Endpoint::Cluster(5),
            Endpoint::Cluster(4),
            64,
        );
        fab.inject(
            t0,
            TxnKind::Write,
            Endpoint::Cluster(1),
            Endpoint::Cluster(4),
            64,
            0,
        );
        fab.inject(
            t_near,
            TxnKind::Write,
            Endpoint::Cluster(5),
            Endpoint::Cluster(4),
            64,
            1,
        );
        let mut done = fab.advance_all();
        done.sort_by_key(|&(_, tag)| tag);
        let diff = |a: SimTime, b: SimTime| {
            if a > b {
                a.saturating_sub(b)
            } else {
                b.saturating_sub(a)
            }
        };
        assert!(
            diff(done[0].0, r_far) <= router_latency,
            "far burst diverged by {} (> {router_latency})",
            diff(done[0].0, r_far)
        );
        assert!(
            diff(done[1].0, r_near) <= router_latency,
            "near burst diverged by {} (> {router_latency})",
            diff(done[1].0, r_near)
        );
        // And the divergence is real: the engines did order the pair
        // differently, so at least one completion moved.
        assert!(done[0].0 != r_far || done[1].0 != r_near);
    }

    #[test]
    fn link_bytes_conserve_routed_bytes() {
        let mut fab = Fabric::new(NocConfig::paper_512());
        for i in 0..40u64 {
            let src = Endpoint::Cluster((i as usize * 31) % 512);
            let dst = if i % 5 == 0 {
                Endpoint::Hbm
            } else {
                Endpoint::Cluster((i as usize * 17 + 3) % 512)
            };
            let kind = if i % 3 == 0 {
                TxnKind::Read
            } else {
                TxnKind::Write
            };
            fab.inject(
                SimTime::from_ns(i),
                kind,
                src,
                dst,
                (i as usize % 9 + 1) * 64,
                i,
            );
        }
        let done = fab.advance_all();
        assert_eq!(done.len(), 40);
        let rep = fab.report();
        assert_eq!(rep.injected, 40);
        assert_eq!(rep.completed, 40);
        assert!(rep.routed_bytes > 0);
        assert_eq!(
            rep.routed_bytes, rep.link_bytes,
            "every booked hop must be served exactly once"
        );
    }

    #[test]
    fn windowed_advance_is_equivalent_to_drain() {
        let inject_all = |fab: &mut Fabric| {
            for i in 0..20u64 {
                fab.inject(
                    SimTime::from_ns(i * 3),
                    TxnKind::Write,
                    Endpoint::Cluster((i as usize * 7) % 16),
                    Endpoint::Cluster(8),
                    512,
                    i,
                );
            }
        };
        let mut all = Fabric::new(NocConfig::paper_512());
        inject_all(&mut all);
        let drained = all.advance_all();

        let mut windowed = Fabric::new(NocConfig::paper_512());
        inject_all(&mut windowed);
        let mut got = Vec::new();
        let mut h = SimTime::from_ns(10);
        while !windowed.is_idle() {
            got.extend(windowed.advance_before(h));
            h += SimTime::from_ns(10);
        }
        assert_eq!(got, drained);
        assert_eq!(windowed.report(), all.report());
    }

    #[test]
    fn peak_queued_tracks_backlog() {
        let mut fab = Fabric::new(NocConfig::paper_512());
        for i in 0..16u64 {
            fab.inject(
                SimTime::ZERO,
                TxnKind::Write,
                Endpoint::Cluster(i as usize * 32),
                Endpoint::Hbm,
                4096,
                i,
            );
        }
        fab.advance_all();
        let rep = fab.report();
        let ctrl = rep.link(LinkId::HbmCtrl).unwrap();
        assert!(
            ctrl.peak_queued > 4,
            "16 concurrent HBM bursts must pile up at the controller (peak {})",
            ctrl.peak_queued
        );
        // A contention-free first-hop link never holds more than one burst.
        let up = rep.link(LinkId::Up { level: 1, child: 0 }).unwrap();
        assert_eq!(up.peak_queued, 1);
        assert_eq!(rep.routed_bytes, rep.link_bytes);
    }

    #[test]
    fn hottest_ranks_by_busy_time() {
        let mut fab = Fabric::new(NocConfig::paper_512());
        for i in 0..8u64 {
            fab.inject(
                SimTime::from_ns(i),
                TxnKind::Write,
                Endpoint::Cluster(i as usize * 64),
                Endpoint::Hbm,
                8192,
                i,
            );
        }
        fab.advance_all();
        let rep = fab.report();
        let hot = rep.hottest(3);
        assert_eq!(hot.len(), 3);
        assert_eq!(hot[0].id, LinkId::HbmCtrl, "the DRAM service dominates");
        assert!(hot[0].busy >= hot[1].busy && hot[1].busy >= hot[2].busy);
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut fab = Fabric::new(NocConfig::paper_512());
            for i in 0..60u64 {
                let kind = if i % 4 == 0 {
                    TxnKind::Read
                } else {
                    TxnKind::Write
                };
                let dst = if i % 6 == 0 {
                    Endpoint::Hbm
                } else {
                    Endpoint::Cluster((i as usize * 13 + 5) % 512)
                };
                fab.inject(
                    SimTime::from_ns(i / 2),
                    kind,
                    Endpoint::Cluster((i as usize * 31) % 512),
                    dst,
                    (i as usize % 7 + 1) * 64,
                    i,
                );
            }
            (fab.advance_all(), fab.report())
        };
        assert_eq!(run(), run());
    }
}
