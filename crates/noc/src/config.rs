//! Interconnect configuration (Table I of the paper).

use aimc_sim::Frequency;

/// Configuration of the off-chip HBM channel and its controller.
///
/// The controller is modeled as a single pipelined server: every burst pays
/// the pipeline latency (`latency_cycles`, Table I: 100) once, and occupies
/// the controller for `row_overhead_cycles + ⌈bytes/width⌉` cycles. The row
/// overhead abstracts DRAM row activation/precharge on the fraction of bursts
/// that miss the row buffer — it is what makes fine-grained scattered traffic
/// (the naive residual placement of Sec. V-4) so much more expensive than
/// streaming.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HbmConfig {
    /// Pipelined request latency in cycles (Table I: 100).
    pub latency_cycles: u64,
    /// Channel width in bytes per cycle (Table I: 64).
    pub width_bytes: usize,
    /// Per-burst controller occupancy overhead in cycles (row activation,
    /// command bus, scheduling). Calibration constant, see DESIGN.md §6.
    pub row_overhead_cycles: u64,
    /// Total capacity in bytes (Table I: 1.5 GB).
    pub capacity_bytes: u64,
}

impl Default for HbmConfig {
    fn default() -> Self {
        HbmConfig {
            latency_cycles: 100,
            width_bytes: 64,
            row_overhead_cycles: 24,
            capacity_bytes: 1536 * 1024 * 1024,
        }
    }
}

/// Configuration of the hierarchical AXI interconnect.
///
/// The topology is a tree of "quadrants" (Sec. II-3): level-1 nodes connect
/// `quadrant_factors[0]` clusters, level-2 nodes connect `quadrant_factors[1]`
/// level-1 quadrants, and so on; the last level is the *wrapper*, which
/// bridges to the HBM controller.
///
/// # Examples
/// ```
/// use aimc_noc::NocConfig;
/// let cfg = NocConfig::paper_512();
/// assert_eq!(cfg.n_clusters(), 512);
/// assert_eq!(cfg.n_levels(), 4); // L1, L2, L3, wrapper
/// assert_eq!(cfg.routers_at_level(1), 128);
/// assert_eq!(cfg.routers_at_level(4), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NocConfig {
    /// Children per node at each level, bottom-up. Table I (read right to
    /// left): `[4, 4, 4, 8]` — 4 clusters per L1, 4 L1 per L2, 4 L2 per L3,
    /// 8 L3 per wrapper.
    pub quadrant_factors: Vec<usize>,
    /// Link data width in bytes at each level (same length as
    /// `quadrant_factors`). Table I: 64 B everywhere.
    pub link_width_bytes: Vec<usize>,
    /// Router traversal latency in cycles at each level. Table I:
    /// `[4, 4, 4, 4]` (the 100-cycle entry is the HBM, see [`HbmConfig`]).
    pub router_latency_cycles: Vec<u64>,
    /// HBM channel and controller parameters.
    pub hbm: HbmConfig,
    /// Clock of the interconnect (Table I: 1 GHz).
    pub frequency: Frequency,
    /// Model AXI write responses / read requests as 1-beat reverse traffic.
    pub model_protocol_overhead: bool,
}

impl NocConfig {
    /// The paper's 512-cluster configuration (Table I).
    pub fn paper_512() -> Self {
        NocConfig {
            quadrant_factors: vec![4, 4, 4, 8],
            link_width_bytes: vec![64, 64, 64, 64],
            router_latency_cycles: vec![4, 4, 4, 4],
            hbm: HbmConfig::default(),
            frequency: Frequency::from_ghz(1),
            model_protocol_overhead: true,
        }
    }

    /// A small 2-level topology for unit tests: `clusters_per_l1 × l1_count`.
    pub fn small(clusters_per_l1: usize, l1_count: usize) -> Self {
        NocConfig {
            quadrant_factors: vec![clusters_per_l1, l1_count],
            link_width_bytes: vec![64, 64],
            router_latency_cycles: vec![4, 4],
            hbm: HbmConfig::default(),
            frequency: Frequency::from_ghz(1),
            model_protocol_overhead: true,
        }
    }

    /// Number of tree levels (routers), the last being the wrapper.
    pub fn n_levels(&self) -> usize {
        self.quadrant_factors.len()
    }

    /// Total number of leaf clusters.
    pub fn n_clusters(&self) -> usize {
        self.quadrant_factors.iter().product()
    }

    /// Number of routers at `level` (1-based; `n_levels()` is the wrapper).
    ///
    /// # Panics
    /// Panics if `level` is 0 or greater than [`NocConfig::n_levels`].
    pub fn routers_at_level(&self, level: usize) -> usize {
        assert!(level >= 1 && level <= self.n_levels(), "level out of range");
        self.n_clusters() / self.quadrant_factors[..level].iter().product::<usize>()
    }

    /// Index of the ancestor router of `cluster` at `level` (level 0 returns
    /// the cluster itself).
    pub fn ancestor(&self, cluster: usize, level: usize) -> usize {
        let div: usize = self.quadrant_factors[..level].iter().product();
        cluster / div
    }

    /// The lowest level at which two clusters share an ancestor router.
    ///
    /// Adjacent clusters under the same L1 node return 1; clusters in
    /// different wrapper subtrees return `n_levels()`.
    pub fn common_ancestor_level(&self, a: usize, b: usize) -> usize {
        for level in 1..=self.n_levels() {
            if self.ancestor(a, level) == self.ancestor(b, level) {
                return level;
            }
        }
        self.n_levels()
    }

    /// Validates structural consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.quadrant_factors.is_empty() {
            return Err("topology needs at least one level".into());
        }
        if self.quadrant_factors.contains(&0) {
            return Err("quadrant factors must be positive".into());
        }
        if self.link_width_bytes.len() != self.n_levels()
            || self.router_latency_cycles.len() != self.n_levels()
        {
            return Err("per-level parameter vectors must match level count".into());
        }
        if self.link_width_bytes.contains(&0) || self.hbm.width_bytes == 0 {
            return Err("link widths must be positive".into());
        }
        Ok(())
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        Self::paper_512()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_counts() {
        let c = NocConfig::paper_512();
        assert!(c.validate().is_ok());
        assert_eq!(c.n_clusters(), 512);
        assert_eq!(c.routers_at_level(1), 128);
        assert_eq!(c.routers_at_level(2), 32);
        assert_eq!(c.routers_at_level(3), 8);
        assert_eq!(c.routers_at_level(4), 1);
    }

    #[test]
    fn ancestors_follow_divisions() {
        let c = NocConfig::paper_512();
        assert_eq!(c.ancestor(0, 1), 0);
        assert_eq!(c.ancestor(3, 1), 0);
        assert_eq!(c.ancestor(4, 1), 1);
        assert_eq!(c.ancestor(511, 1), 127);
        assert_eq!(c.ancestor(511, 4), 0);
    }

    #[test]
    fn common_ancestor_levels() {
        let c = NocConfig::paper_512();
        assert_eq!(c.common_ancestor_level(0, 1), 1); // same L1 quad
        assert_eq!(c.common_ancestor_level(0, 4), 2); // same L2 quad
        assert_eq!(c.common_ancestor_level(0, 16), 3); // same L3 quad
        assert_eq!(c.common_ancestor_level(0, 64), 4); // wrapper
        assert_eq!(c.common_ancestor_level(0, 511), 4);
        assert_eq!(c.common_ancestor_level(7, 7), 1); // self: nearest router
    }

    #[test]
    fn validate_catches_mismatched_vectors() {
        let mut c = NocConfig::paper_512();
        c.link_width_bytes.pop();
        assert!(c.validate().is_err());
        let mut c = NocConfig::paper_512();
        c.quadrant_factors = vec![];
        assert!(c.validate().is_err());
        let mut c = NocConfig::paper_512();
        c.quadrant_factors[0] = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn hbm_defaults_match_table1() {
        let h = HbmConfig::default();
        assert_eq!(h.latency_cycles, 100);
        assert_eq!(h.width_bytes, 64);
        assert_eq!(h.capacity_bytes, 1536 * 1024 * 1024);
    }
}
