//! The interconnect transfer engine.
//!
//! ## Modeling approach: link reservation
//!
//! The runtime injects *transactions* (DMA bursts) in global time order. For
//! each transaction we walk its route — up the quadrant tree to the lowest
//! common ancestor, then down (Sec. II-3) — reserving time on every directed
//! link it crosses. A link is a FIFO server: service begins at
//! `max(arrival, link.free_at)` and occupies `⌈bytes/width⌉` cycles; the head
//! of the burst reaches the next hop after the level's router latency
//! (virtual-cut-through, valid because all levels share one data width).
//!
//! This gives O(hops) cost per transaction with *no* internal events while
//! still modeling the two effects the paper's results hinge on: per-hop
//! latency accumulation and bandwidth contention (most importantly on the
//! HBM channel, which serializes the naive residual traffic of Sec. V-4).
//! Because injections arrive in nondecreasing time order, reservation order
//! equals arrival order and the FIFO discipline is respected; the residual
//! approximation (a transaction occasionally reserves ahead of one that
//! would physically reach an inner link first) is bounded by one router
//! latency and does not accumulate.

use crate::config::NocConfig;
use crate::topology::Topology;
use aimc_sim::{Cycles, SimTime};
use std::fmt;

/// A transfer endpoint: a leaf cluster or the external HBM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// Cluster leaf by index.
    Cluster(usize),
    /// The off-chip high-bandwidth memory behind the wrapper.
    Hbm,
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Cluster(i) => write!(f, "cluster{i}"),
            Endpoint::Hbm => write!(f, "hbm"),
        }
    }
}

/// AXI transaction direction, as seen by the initiator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// Data flows from `dst` back to the initiator (`src`).
    Read,
    /// Data flows from the initiator (`src`) to `dst`.
    Write,
}

/// Identifier of a directed link for statistics queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkId {
    /// Child → router at `level` (1-based), child's global index at level-1.
    Up {
        /// Tree level of the router (1-based).
        level: usize,
        /// Global index of the child entity at `level - 1`.
        child: usize,
    },
    /// Router at `level` → child.
    Down {
        /// Tree level of the router (1-based).
        level: usize,
        /// Global index of the child entity at `level - 1`.
        child: usize,
    },
    /// Wrapper → HBM controller.
    HbmUp,
    /// HBM controller → wrapper.
    HbmDown,
    /// The HBM controller itself (DRAM service). Not a routed link — it is
    /// the server behind the channel — but it carries the same usage
    /// statistics, so reports can treat it uniformly.
    HbmCtrl,
}

#[derive(Debug, Clone, Copy, Default)]
struct LinkState {
    free_at: SimTime,
    busy_ps: u64,
    transactions: u64,
    bytes: u64,
}

/// Per-link usage snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkStats {
    /// Total time the link was occupied by payloads.
    pub busy: SimTime,
    /// Number of transactions served.
    pub transactions: u64,
    /// Total payload bytes carried.
    pub bytes: u64,
}

/// The hierarchical interconnect with reservation-based contention.
///
/// # Examples
/// ```
/// use aimc_noc::{Endpoint, Noc, NocConfig, TxnKind};
/// use aimc_sim::SimTime;
/// let mut noc = Noc::new(NocConfig::paper_512());
/// let done = noc.transfer(
///     SimTime::ZERO,
///     TxnKind::Write,
///     Endpoint::Cluster(0),
///     Endpoint::Cluster(1),
///     256,
/// );
/// assert!(done > SimTime::ZERO);
/// ```
#[derive(Debug)]
pub struct Noc {
    topo: Topology,
    /// Dense per-link state in [`Topology`] index order.
    links: Vec<LinkState>,
    hbm_ctrl: LinkState,
    total_transactions: u64,
}

impl Noc {
    /// Builds the interconnect for `cfg`.
    ///
    /// # Panics
    /// Panics if the configuration fails [`NocConfig::validate`].
    pub fn new(cfg: NocConfig) -> Self {
        let topo = Topology::new(cfg);
        let links = vec![LinkState::default(); topo.n_links()];
        Noc {
            topo,
            links,
            hbm_ctrl: LinkState::default(),
            total_transactions: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NocConfig {
        self.topo.config()
    }

    /// The topology the engine routes over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Total transactions injected so far.
    pub fn transactions(&self) -> u64 {
        self.total_transactions
    }

    fn cycles(&self, n: u64) -> SimTime {
        self.config().frequency.cycles_to_time(Cycles(n))
    }

    /// Reserves `occupancy` on `link` for a payload arriving (head) at `t`.
    /// Returns the time the head leaves the link (start + latency).
    fn reserve(
        link: &mut LinkState,
        t: SimTime,
        occupancy: SimTime,
        latency: SimTime,
        bytes: usize,
    ) -> SimTime {
        let start = if link.free_at > t { link.free_at } else { t };
        link.free_at = start + occupancy;
        link.busy_ps += occupancy.as_ps();
        link.transactions += 1;
        link.bytes += bytes as u64;
        start + latency
    }

    /// Walks the payload route from `from` to `to`, reserving bandwidth on
    /// every hop. Returns `(head_arrival, tail_arrival)` at the destination.
    fn route_payload(
        &mut self,
        t0: SimTime,
        from: Endpoint,
        to: Endpoint,
        bytes: usize,
    ) -> (SimTime, SimTime) {
        let route = self.topo.route(from, to);
        let mut t = t0;
        let mut last_occ = SimTime::ZERO;
        for hop in &route.hops {
            let occ = self.cycles(bytes.max(1).div_ceil(hop.width_bytes) as u64);
            let lat = self.cycles(hop.latency_cycles);
            t = Self::reserve(&mut self.links[hop.index], t, occ, lat, bytes);
            last_occ = occ;
        }
        (t, t + last_occ)
    }

    /// Reserves the HBM controller for a burst whose head arrives at `t`.
    /// Returns the time the data is available (read) / absorbed (write).
    fn hbm_service(&mut self, t: SimTime, bytes: usize) -> SimTime {
        let occ_cycles = self.config().hbm.row_overhead_cycles
            + bytes.max(1).div_ceil(self.config().hbm.width_bytes) as u64;
        let occ = self.cycles(occ_cycles);
        Self::reserve(&mut self.hbm_ctrl, t, occ, occ, bytes)
    }

    /// Injects one transaction and returns its completion time as observed
    /// by the initiator `src` (write: response received; read: last data
    /// beat received).
    ///
    /// Transactions must be injected in nondecreasing `now` order (the
    /// discrete-event loop guarantees this).
    ///
    /// # Panics
    /// Panics if a cluster index is out of range.
    pub fn transfer(
        &mut self,
        now: SimTime,
        kind: TxnKind,
        src: Endpoint,
        dst: Endpoint,
        bytes: usize,
    ) -> SimTime {
        if let Endpoint::Cluster(i) = src {
            assert!(
                i < self.config().n_clusters(),
                "source cluster out of range"
            );
        }
        if let Endpoint::Cluster(i) = dst {
            assert!(
                i < self.config().n_clusters(),
                "destination cluster out of range"
            );
        }
        self.total_transactions += 1;

        match kind {
            TxnKind::Write => {
                // Payload src -> dst, then (optionally) 1-beat response back.
                // Data leaving the HBM pays the controller (DRAM read) first.
                let t0 = if src == Endpoint::Hbm {
                    self.hbm_service(now, bytes)
                } else {
                    now
                };
                let (head, mut tail) = self.route_payload(t0, src, dst, bytes);
                if dst == Endpoint::Hbm {
                    tail = self.hbm_service(head, bytes);
                }
                if self.config().model_protocol_overhead {
                    let (_, resp_tail) = self.route_payload(tail, dst, src, 1);
                    resp_tail
                } else {
                    tail
                }
            }
            TxnKind::Read => {
                // 1-beat request src -> dst, service at dst, payload back.
                let (req_head, req_tail) = if self.config().model_protocol_overhead {
                    self.route_payload(now, src, dst, 1)
                } else {
                    (now, now)
                };
                let _ = req_head;
                let data_ready = if dst == Endpoint::Hbm {
                    self.hbm_service(req_tail, bytes)
                } else {
                    // Remote L1 read: a couple of cycles of TCDM access.
                    req_tail + self.cycles(2)
                };
                let (_, tail) = self.route_payload(data_ready, dst, src, bytes);
                tail
            }
        }
    }

    /// Latency the transaction would see on an idle network (no state
    /// mutation) — used in tests and by the mapper's placement heuristics.
    pub fn zero_load_latency(
        &self,
        kind: TxnKind,
        src: Endpoint,
        dst: Endpoint,
        bytes: usize,
    ) -> SimTime {
        // Cheap clone of reservation state is avoided by computing on a
        // scratch copy of just the link clocks: we re-run the walk on a
        // throwaway clone. Topologies are small (≤ ~1300 links).
        let mut scratch = Noc {
            topo: self.topo.clone(),
            links: vec![LinkState::default(); self.links.len()],
            hbm_ctrl: LinkState::default(),
            total_transactions: 0,
        };
        scratch.transfer(SimTime::ZERO, kind, src, dst, bytes)
    }

    /// Usage statistics of one link.
    ///
    /// # Panics
    /// Panics if the link does not exist in this topology.
    pub fn link_stats(&self, id: LinkId) -> LinkStats {
        let s = match id {
            LinkId::HbmCtrl => &self.hbm_ctrl,
            _ => &self.links[self.topo.link_index(id)],
        };
        LinkStats {
            busy: SimTime::from_ps(s.busy_ps),
            transactions: s.transactions,
            bytes: s.bytes,
        }
    }

    /// Total busy time of the HBM controller — the contention signal behind
    /// the residual-placement experiment (Fig. 5C→5D).
    pub fn hbm_busy(&self) -> SimTime {
        SimTime::from_ps(self.hbm_ctrl.busy_ps)
    }

    /// Total bytes that crossed the HBM controller.
    pub fn hbm_bytes(&self) -> u64 {
        self.hbm_ctrl.bytes
    }

    /// Aggregate busy time over all tree links at `level` (1-based).
    pub fn level_busy(&self, level: usize) -> SimTime {
        let ps: u64 = (0..self.links.len())
            .filter(|&i| self.topo.link_level(self.topo.link_id(i)) == Some(level))
            .map(|i| self.links[i].busy_ps)
            .sum();
        SimTime::from_ps(ps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> Noc {
        Noc::new(NocConfig::paper_512())
    }

    #[test]
    fn neighbor_write_zero_load() {
        let noc = paper();
        // cluster0 -> cluster1: up through L1 router, down. 64 B = 1 beat.
        // up: latency 4 cyc; down: latency 4 cyc; +1 beat tail; +response.
        let t = noc.zero_load_latency(
            TxnKind::Write,
            Endpoint::Cluster(0),
            Endpoint::Cluster(1),
            64,
        );
        // Payload head: 4+4 = 8 cycles, tail +1; response 1 beat: +8+1.
        assert_eq!(t, SimTime::from_ns(18));
    }

    #[test]
    fn latency_grows_with_tree_distance() {
        let noc = paper();
        let near = noc.zero_load_latency(
            TxnKind::Write,
            Endpoint::Cluster(0),
            Endpoint::Cluster(1),
            256,
        );
        let mid = noc.zero_load_latency(
            TxnKind::Write,
            Endpoint::Cluster(0),
            Endpoint::Cluster(5),
            256,
        );
        let far = noc.zero_load_latency(
            TxnKind::Write,
            Endpoint::Cluster(0),
            Endpoint::Cluster(400),
            256,
        );
        assert!(near < mid, "{near} !< {mid}");
        assert!(mid < far, "{mid} !< {far}");
    }

    #[test]
    fn hbm_read_includes_controller_latency() {
        let noc = paper();
        let t = noc.zero_load_latency(TxnKind::Read, Endpoint::Cluster(0), Endpoint::Hbm, 64);
        // Must at least include the 100-cycle pipe + row overhead + 4 levels
        // up and down.
        assert!(t >= SimTime::from_ns(100 + 24 + 16));
    }

    #[test]
    fn contention_serializes_same_link() {
        let mut noc = paper();
        let bytes = 64 * 100; // 100 beats => 100 cycles occupancy per link
        let t1 = noc.transfer(
            SimTime::ZERO,
            TxnKind::Write,
            Endpoint::Cluster(0),
            Endpoint::Cluster(1),
            bytes,
        );
        // Same source link, injected at the same instant: must queue.
        let t2 = noc.transfer(
            SimTime::ZERO,
            TxnKind::Write,
            Endpoint::Cluster(0),
            Endpoint::Cluster(1),
            bytes,
        );
        assert!(t2 >= t1 + SimTime::from_ns(100), "t1={t1} t2={t2}");
    }

    #[test]
    fn disjoint_paths_do_not_interfere() {
        let mut noc = paper();
        let bytes = 64 * 50;
        let t1 = noc.transfer(
            SimTime::ZERO,
            TxnKind::Write,
            Endpoint::Cluster(0),
            Endpoint::Cluster(1),
            bytes,
        );
        let t2 = noc.transfer(
            SimTime::ZERO,
            TxnKind::Write,
            Endpoint::Cluster(8),
            Endpoint::Cluster(9),
            bytes,
        );
        assert_eq!(t1, t2, "independent subtrees must not contend");
    }

    #[test]
    fn hbm_contention_accumulates() {
        let mut noc = paper();
        let mut last = SimTime::ZERO;
        for i in 0..32 {
            let t = noc.transfer(
                SimTime::ZERO,
                TxnKind::Write,
                Endpoint::Cluster(i * 16),
                Endpoint::Hbm,
                256,
            );
            assert!(
                t >= last,
                "HBM completions must be nondecreasing under contention"
            );
            last = t;
        }
        // 32 bursts × (24 + 4) cycles occupancy = 896 cycles of controller busy.
        assert_eq!(noc.hbm_busy(), SimTime::from_ns(32 * 28));
        assert_eq!(noc.hbm_bytes(), 32 * 256);
    }

    #[test]
    fn completion_never_beats_zero_load() {
        let mut noc = paper();
        for i in 0..20 {
            let src = Endpoint::Cluster(i * 7 % 512);
            let dst = Endpoint::Cluster((i * 13 + 5) % 512);
            let zl = noc.zero_load_latency(TxnKind::Write, src, dst, 512);
            let t0 = SimTime::from_ns(i as u64);
            let done = noc.transfer(t0, TxnKind::Write, src, dst, 512);
            assert!(done >= t0 + zl.saturating_sub(SimTime::ZERO));
        }
    }

    #[test]
    fn link_stats_track_traffic() {
        let mut noc = paper();
        noc.transfer(
            SimTime::ZERO,
            TxnKind::Write,
            Endpoint::Cluster(0),
            Endpoint::Cluster(1),
            640,
        );
        let up = noc.link_stats(LinkId::Up { level: 1, child: 0 });
        assert_eq!(up.transactions, 1);
        assert_eq!(up.bytes, 640);
        assert_eq!(up.busy, SimTime::from_ns(10)); // 10 beats
        let down = noc.link_stats(LinkId::Down { level: 1, child: 1 });
        assert_eq!(down.transactions, 1);
        // Response travels the reverse direction.
        let resp_down = noc.link_stats(LinkId::Down { level: 1, child: 0 });
        assert_eq!(resp_down.transactions, 1);
        assert_eq!(resp_down.bytes, 1);
    }

    #[test]
    fn reads_round_trip() {
        let noc = paper();
        let w = noc.zero_load_latency(
            TxnKind::Write,
            Endpoint::Cluster(0),
            Endpoint::Cluster(100),
            256,
        );
        let r = noc.zero_load_latency(
            TxnKind::Read,
            Endpoint::Cluster(0),
            Endpoint::Cluster(100),
            256,
        );
        assert!(
            r > w,
            "read {r} must exceed write {w} (request + data return)"
        );
    }

    #[test]
    fn small_topology_works() {
        let mut noc = Noc::new(NocConfig::small(2, 2));
        assert_eq!(noc.config().n_clusters(), 4);
        let t = noc.transfer(
            SimTime::ZERO,
            TxnKind::Write,
            Endpoint::Cluster(0),
            Endpoint::Cluster(3),
            64,
        );
        assert!(t > SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_cluster_index() {
        let mut noc = Noc::new(NocConfig::small(2, 2));
        noc.transfer(
            SimTime::ZERO,
            TxnKind::Write,
            Endpoint::Cluster(4),
            Endpoint::Cluster(0),
            64,
        );
    }

    #[test]
    fn determinism() {
        let run = || {
            let mut noc = paper();
            let mut acc = Vec::new();
            for i in 0..50u64 {
                let t = noc.transfer(
                    SimTime::from_ns(i),
                    TxnKind::Write,
                    Endpoint::Cluster((i as usize * 31) % 512),
                    Endpoint::Cluster((i as usize * 17 + 3) % 512),
                    (i as usize % 7 + 1) * 64,
                );
                acc.push(t);
            }
            acc
        };
        assert_eq!(run(), run());
    }
}
