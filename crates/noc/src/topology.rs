//! Route-aware description of the quadrant tree: which directed links exist,
//! and which ordered sequence of them a payload crosses between two
//! endpoints.
//!
//! [`Topology`] is the single source of routing truth for both transfer
//! engines in this crate: the reservation oracle ([`crate::Noc`]) walks a
//! [`Route`]'s hops reserving bandwidth analytically, and the hop-by-hop
//! [`crate::Fabric`] flies in-flight messages down the same hops one event at
//! a time. A route runs *up* the tree from the source cluster to the lowest
//! common ancestor router (Sec. II-3 of the paper), then *down* to the
//! destination; the HBM hangs off the wrapper as a leaf — traffic to or from
//! it crosses the full up (or down) segment plus the dedicated
//! wrapper↔controller channel ([`LinkId::HbmUp`] / [`LinkId::HbmDown`]).
//!
//! Every directed link also gets a dense index (`0..n_links`), so per-link
//! state and statistics live in flat arrays instead of hash maps.

use crate::config::NocConfig;
use crate::network::{Endpoint, LinkId};

/// One directed link crossed by a payload, with the physical parameters a
/// transfer engine needs to model it: serving `bytes` occupies the link for
/// `⌈bytes / width_bytes⌉` cycles, and the burst head reaches the next hop
/// `latency_cycles` after service starts (virtual cut-through).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// The directed link crossed.
    pub id: LinkId,
    /// Dense index of the link (`0..Topology::n_links`).
    pub index: usize,
    /// Data width in bytes per cycle.
    pub width_bytes: usize,
    /// Head-of-burst traversal latency in cycles.
    pub latency_cycles: u64,
}

/// The ordered hop sequence of one payload between two endpoints.
///
/// Never empty for routes produced by [`Topology::route`]: even a
/// cluster-to-itself transfer bounces off its L1 router (up + down), and
/// HBM-to-HBM traffic crosses the wrapper↔controller channel.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Route {
    /// Hops in traversal order (up segment, HBM channel, down segment).
    pub hops: Vec<Hop>,
}

impl Route {
    /// Number of hops.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Whether the route has no hops.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }
}

/// The quadrant-tree link inventory and router.
///
/// # Examples
/// ```
/// use aimc_noc::{Endpoint, LinkId, NocConfig, Topology};
/// let topo = Topology::new(NocConfig::paper_512());
/// // Neighbors under one L1 router: one hop up, one hop down.
/// let r = topo.route(Endpoint::Cluster(0), Endpoint::Cluster(1));
/// assert_eq!(r.hops.len(), 2);
/// assert_eq!(r.hops[0].id, LinkId::Up { level: 1, child: 0 });
/// assert_eq!(r.hops[1].id, LinkId::Down { level: 1, child: 1 });
/// // Cluster to HBM: the full up segment plus the HBM channel.
/// let r = topo.route(Endpoint::Cluster(0), Endpoint::Hbm);
/// assert_eq!(r.hops.len(), 5);
/// assert_eq!(r.hops.last().unwrap().id, LinkId::HbmUp);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    cfg: NocConfig,
    /// `level_offsets[level-1]` = dense index of `Up { level, child: 0 }`.
    level_offsets: Vec<usize>,
    /// Children (= up/down link pairs) at each level.
    level_children: Vec<usize>,
    n_links: usize,
}

impl Topology {
    /// Builds the link inventory for `cfg`.
    ///
    /// # Panics
    /// Panics if the configuration fails [`NocConfig::validate`].
    pub fn new(cfg: NocConfig) -> Self {
        cfg.validate().expect("invalid NoC configuration");
        let mut level_offsets = Vec::with_capacity(cfg.n_levels());
        let mut level_children = Vec::with_capacity(cfg.n_levels());
        let mut next = 0usize;
        let mut entities = cfg.n_clusters();
        for level in 1..=cfg.n_levels() {
            level_offsets.push(next);
            level_children.push(entities);
            next += entities * 2;
            entities = cfg.routers_at_level(level);
        }
        // The two HBM channel directions occupy the last two dense slots.
        let n_links = next + 2;
        Topology {
            cfg,
            level_offsets,
            level_children,
            n_links,
        }
    }

    /// The configuration the topology was built from.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Total number of directed links (tree up/down pairs plus the two HBM
    /// channel directions).
    pub fn n_links(&self) -> usize {
        self.n_links
    }

    /// Dense index of a directed link.
    ///
    /// # Panics
    /// Panics if the link does not exist in this topology.
    pub fn link_index(&self, id: LinkId) -> usize {
        match id {
            LinkId::Up { level, child } => {
                assert!(
                    level >= 1
                        && level <= self.cfg.n_levels()
                        && child < self.level_children[level - 1],
                    "no such link: {id:?}"
                );
                self.level_offsets[level - 1] + child * 2
            }
            LinkId::Down { level, child } => {
                assert!(
                    level >= 1
                        && level <= self.cfg.n_levels()
                        && child < self.level_children[level - 1],
                    "no such link: {id:?}"
                );
                self.level_offsets[level - 1] + child * 2 + 1
            }
            LinkId::HbmUp => self.n_links - 2,
            LinkId::HbmDown => self.n_links - 1,
            LinkId::HbmCtrl => panic!("no such link: {id:?} is a server, not a routed link"),
        }
    }

    /// The [`LinkId`] at a dense index (inverse of [`Topology::link_index`]).
    ///
    /// # Panics
    /// Panics if `index >= n_links`.
    pub fn link_id(&self, index: usize) -> LinkId {
        assert!(index < self.n_links, "link index out of range");
        if index == self.n_links - 2 {
            return LinkId::HbmUp;
        }
        if index == self.n_links - 1 {
            return LinkId::HbmDown;
        }
        let level = self
            .level_offsets
            .iter()
            .rposition(|&off| off <= index)
            .expect("offsets start at 0")
            + 1;
        let rel = index - self.level_offsets[level - 1];
        let child = rel / 2;
        if rel.is_multiple_of(2) {
            LinkId::Up { level, child }
        } else {
            LinkId::Down { level, child }
        }
    }

    /// All directed links in dense-index order.
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.n_links).map(|i| self.link_id(i))
    }

    /// The tree level of a link (1-based; `None` for the HBM channel).
    pub fn link_level(&self, id: LinkId) -> Option<usize> {
        match id {
            LinkId::Up { level, .. } | LinkId::Down { level, .. } => Some(level),
            LinkId::HbmUp | LinkId::HbmDown | LinkId::HbmCtrl => None,
        }
    }

    fn tree_hop(&self, level: usize, child: usize, up: bool) -> Hop {
        let id = if up {
            LinkId::Up { level, child }
        } else {
            LinkId::Down { level, child }
        };
        Hop {
            id,
            index: self.link_index(id),
            width_bytes: self.cfg.link_width_bytes[level - 1],
            latency_cycles: self.cfg.router_latency_cycles[level - 1],
        }
    }

    fn hbm_hop(&self, up: bool) -> Hop {
        let id = if up { LinkId::HbmUp } else { LinkId::HbmDown };
        Hop {
            id,
            index: self.link_index(id),
            width_bytes: self.cfg.hbm.width_bytes,
            latency_cycles: self.cfg.hbm.latency_cycles,
        }
    }

    /// The ordered hop sequence a payload crosses from `src` to `dst`: up
    /// the tree to the lowest common ancestor (or the wrapper for HBM
    /// traffic), across the HBM channel if the route touches the memory,
    /// then down to the destination.
    ///
    /// The HBM *controller* (DRAM service) is not a hop — it is a server the
    /// transfer engines model separately, because reads and writes visit it
    /// at different points of the transaction.
    ///
    /// # Panics
    /// Panics if a cluster index is out of range.
    pub fn route(&self, src: Endpoint, dst: Endpoint) -> Route {
        if let Endpoint::Cluster(i) = src {
            assert!(i < self.cfg.n_clusters(), "source cluster out of range");
        }
        if let Endpoint::Cluster(i) = dst {
            assert!(
                i < self.cfg.n_clusters(),
                "destination cluster out of range"
            );
        }
        let n_levels = self.cfg.n_levels();
        let (up_from, up_to_level, down_from_level, down_to) = match (src, dst) {
            (Endpoint::Cluster(a), Endpoint::Cluster(b)) => {
                let l = self.cfg.common_ancestor_level(a, b);
                (Some(a), l, l, Some(b))
            }
            (Endpoint::Cluster(a), Endpoint::Hbm) => (Some(a), n_levels, 0, None),
            (Endpoint::Hbm, Endpoint::Cluster(b)) => (None, 0, n_levels, Some(b)),
            (Endpoint::Hbm, Endpoint::Hbm) => (None, 0, 0, None),
        };

        let mut hops = Vec::with_capacity(up_to_level + down_from_level + 1);
        if let Some(a) = up_from {
            for level in 1..=up_to_level {
                hops.push(self.tree_hop(level, self.cfg.ancestor(a, level - 1), true));
            }
        }
        // The HBM channel crossing mirrors the wrapper's leaf position: any
        // route that starts or ends at the memory crosses exactly one of the
        // two channel directions (toward the controller when the memory is
        // the destination).
        match (src, dst) {
            (_, Endpoint::Hbm) => hops.push(self.hbm_hop(true)),
            (Endpoint::Hbm, _) => hops.push(self.hbm_hop(false)),
            _ => {}
        }
        if let Some(b) = down_to {
            for level in (1..=down_from_level).rev() {
                hops.push(self.tree_hop(level, self.cfg.ancestor(b, level - 1), false));
            }
        }
        Route { hops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> Topology {
        Topology::new(NocConfig::paper_512())
    }

    #[test]
    fn link_count_matches_tree_structure() {
        let t = paper();
        // 512 + 128 + 32 + 8 up/down pairs, plus the 2 HBM channel links.
        assert_eq!(t.n_links(), 2 * (512 + 128 + 32 + 8) + 2);
    }

    #[test]
    fn dense_indexing_round_trips() {
        for topo in [paper(), Topology::new(NocConfig::small(2, 3))] {
            for i in 0..topo.n_links() {
                let id = topo.link_id(i);
                assert_eq!(topo.link_index(id), i, "index {i} ({id:?})");
            }
        }
    }

    #[test]
    fn routes_climb_to_the_common_ancestor_only() {
        let t = paper();
        // Same L2 quadrant (clusters 0 and 4): two hops up, two down.
        let r = t.route(Endpoint::Cluster(0), Endpoint::Cluster(4));
        let ids: Vec<LinkId> = r.hops.iter().map(|h| h.id).collect();
        assert_eq!(
            ids,
            vec![
                LinkId::Up { level: 1, child: 0 },
                LinkId::Up { level: 2, child: 0 },
                LinkId::Down { level: 2, child: 1 },
                LinkId::Down { level: 1, child: 4 },
            ]
        );
    }

    #[test]
    fn cross_wrapper_route_has_eight_hops() {
        let t = paper();
        // Different wrapper subtrees: 4 up + 4 down, no HBM channel.
        let r = t.route(Endpoint::Cluster(0), Endpoint::Cluster(511));
        assert_eq!(r.len(), 8);
        assert!(r
            .hops
            .iter()
            .all(|h| matches!(h.id, LinkId::Up { .. } | LinkId::Down { .. })));
    }

    #[test]
    fn hbm_routes_cross_the_channel() {
        let t = paper();
        let to = t.route(Endpoint::Cluster(5), Endpoint::Hbm);
        assert_eq!(to.len(), 5);
        assert_eq!(to.hops[4].id, LinkId::HbmUp);
        assert_eq!(to.hops[4].latency_cycles, 100);
        let from = t.route(Endpoint::Hbm, Endpoint::Cluster(5));
        assert_eq!(from.len(), 5);
        assert_eq!(from.hops[0].id, LinkId::HbmDown);
        // HBM -> HBM still crosses the channel toward the controller.
        let local = t.route(Endpoint::Hbm, Endpoint::Hbm);
        assert_eq!(local.len(), 1);
        assert_eq!(local.hops[0].id, LinkId::HbmUp);
    }

    #[test]
    fn self_route_bounces_off_the_l1_router() {
        let t = paper();
        let r = t.route(Endpoint::Cluster(7), Endpoint::Cluster(7));
        let ids: Vec<LinkId> = r.hops.iter().map(|h| h.id).collect();
        assert_eq!(
            ids,
            vec![
                LinkId::Up { level: 1, child: 7 },
                LinkId::Down { level: 1, child: 7 },
            ]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_cluster() {
        let t = Topology::new(NocConfig::small(2, 2));
        t.route(Endpoint::Cluster(4), Endpoint::Hbm);
    }

    #[test]
    #[should_panic(expected = "no such link")]
    fn rejects_bad_link() {
        let t = Topology::new(NocConfig::small(2, 2));
        t.link_index(LinkId::Up { level: 3, child: 0 });
    }
}
