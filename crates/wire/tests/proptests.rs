//! Property tests for the wire codec: every frame the protocol can
//! express survives encode → decode unchanged, including the length-
//! prefixed stream framing — the property the remote fleet's bit-exact
//! invariance rests on.

use aimc_dnn::{Shape, Tensor};
use aimc_parallel::Parallelism;
use aimc_wire::{
    decode_frame, encode_frame, read_frame, write_frame, Frame, IndexLease, NoiseSpec, Priority,
    QosClass, ReplyError, ShardReply, ShardRequest, ShardSpec, WireClassStats, WireStats,
};
use aimc_xbar::XbarConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// A random tensor with a small random shape; values include the full f32
/// range via raw bit patterns (NaNs excluded so `PartialEq` can witness
/// the round trip — bit-exactness for NaN is covered by the unit tests).
fn random_tensor(rng: &mut StdRng) -> Tensor {
    let shape = Shape::new(
        rng.gen_range(1usize..4),
        rng.gen_range(1usize..4),
        rng.gen_range(1usize..5),
    );
    let data = (0..shape.numel())
        .map(|_| loop {
            let v = f32::from_bits(rng.gen::<u32>());
            if !v.is_nan() {
                break v;
            }
        })
        .collect();
    Tensor::from_vec(shape, data)
}

fn random_string(rng: &mut StdRng) -> String {
    let n = rng.gen_range(0usize..24);
    (0..n)
        .map(|_| char::from(rng.gen_range(b' '..b'~')))
        .collect()
}

/// A random QoS class: any priority rank, deadline present or absent.
/// Deadlines stay below the codec's `u64::MAX` "no deadline" sentinel.
fn random_class(rng: &mut StdRng) -> QosClass {
    QosClass {
        priority: Priority::from_rank(rng.gen_range(0u8..Priority::COUNT as u8)).unwrap(),
        deadline: rng
            .gen::<bool>()
            .then(|| Duration::from_nanos(rng.gen_range(0..u64::MAX - 1))),
    }
}

fn random_class_stats(rng: &mut StdRng) -> WireClassStats {
    WireClassStats {
        admitted: rng.gen(),
        shed_queue_full: rng.gen(),
        shed_class_budget: rng.gen(),
        shed_overload: rng.gen(),
        infeasible: rng.gen(),
        deadline_misses: rng.gen(),
        latencies_ns: (0..rng.gen_range(0usize..16)).map(|_| rng.gen()).collect(),
    }
}

/// A random shard spec: arbitrary model id, geometry, noise channels and
/// seed (non-NaN floats so `PartialEq` can witness the round trip).
fn random_spec(rng: &mut StdRng) -> ShardSpec {
    let finite = |rng: &mut StdRng| {
        let v = f64::from_bits(rng.gen::<u64>()).abs() % 1e6;
        if v.is_finite() {
            v
        } else {
            0.5
        }
    };
    let mut cfg = XbarConfig::hermes_256()
        .with_size(rng.gen_range(1usize..1024), rng.gen_range(1usize..1024));
    cfg.weight_bits = rng.gen_range(1..16);
    cfg.prog_noise_sigma = finite(rng);
    cfg.read_noise_sigma = finite(rng);
    cfg.drift_nu = finite(rng);
    ShardSpec {
        model_id: random_string(rng),
        xbar_cfg: cfg,
        noise: NoiseSpec {
            prog_sigma: finite(rng),
            read_sigma: finite(rng),
            drift_nu: finite(rng),
        },
        seed: rng.gen(),
    }
}

/// Draws one frame covering every variant and every nested outcome arm.
fn random_frame(rng: &mut StdRng) -> Frame {
    match rng.gen_range(0u32..19) {
        0 => Frame::Request(ShardRequest {
            global_index: rng.gen(),
            class: random_class(rng),
            image: random_tensor(rng),
        }),
        1 => Frame::Reply(ShardReply {
            global_index: rng.gen(),
            marked: rng.gen(),
            outcome: Ok(random_tensor(rng)),
        }),
        2 => Frame::Reply(ShardReply {
            global_index: rng.gen(),
            marked: rng.gen(),
            outcome: Err(match rng.gen_range(0u32..3) {
                0 => ReplyError::ShutDown,
                1 => ReplyError::Canceled,
                _ => ReplyError::Exec(random_string(rng)),
            }),
        }),
        3 => Frame::Lease(IndexLease::new(rng.gen(), rng.gen_range(0u64..1 << 20))),
        4 => Frame::Drain,
        5 => Frame::DrainDone,
        6 => Frame::Shutdown,
        7 => Frame::ShutdownDone,
        8 => Frame::ApplyDrift(f64::from_bits(rng.gen::<u64>() | 1).abs() % 1e9),
        9 => Frame::DriftDone(rng.gen()),
        10 => Frame::Reprogram,
        11 => Frame::ReprogramDone(if rng.gen() {
            Ok(())
        } else {
            Err(random_string(rng))
        }),
        12 => Frame::SetParallelism(if rng.gen() {
            Parallelism::Serial
        } else {
            Parallelism::Threads(rng.gen_range(0usize..256))
        }),
        13 => Frame::ParallelismSet,
        14 => Frame::StatsProbe,
        15 => Frame::Stats(WireStats {
            submitted: rng.gen(),
            completed: rng.gen(),
            rejected: rng.gen(),
            batches: rng.gen(),
            dispatched: rng.gen(),
            max_batch_observed: rng.gen(),
            ecn_marks: rng.gen(),
            drift_age: rng.gen(),
            reprograms: rng.gen(),
            classes: [
                random_class_stats(rng),
                random_class_stats(rng),
                random_class_stats(rng),
            ],
            queue_waits_ns: (0..rng.gen_range(0usize..64)).map(|_| rng.gen()).collect(),
        }),
        16 => Frame::SpecProbe,
        17 => Frame::Spec(random_spec(rng)),
        _ => Frame::Request(ShardRequest {
            global_index: 0,
            class: QosClass::default(),
            image: Tensor::zeros(Shape::new(1, 1, 1)),
        }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity for every frame.
    #[test]
    fn codec_round_trips_every_frame(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frame = random_frame(&mut rng);
        let decoded = decode_frame(&encode_frame(&frame)).unwrap();
        prop_assert_eq!(&decoded, &frame, "payload round trip changed the frame");
    }

    /// A whole stream of length-prefixed frames re-frames exactly, in
    /// order — no frame boundary depends on frame contents.
    #[test]
    fn stream_framing_round_trips(seed in any::<u64>(), n in 1usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frames: Vec<Frame> = (0..n).map(|_| random_frame(&mut rng)).collect();
        let mut stream = Vec::new();
        for f in &frames {
            write_frame(&mut stream, f).unwrap();
        }
        let mut r = stream.as_slice();
        for f in &frames {
            prop_assert_eq!(&read_frame(&mut r).unwrap(), f);
        }
        prop_assert!(r.is_empty(), "framing consumed the wrong byte count");
    }

    /// Decoding never panics on arbitrary bytes: any mutation of a valid
    /// payload either decodes to some frame or fails cleanly.
    #[test]
    fn decode_is_total_on_corrupted_payloads(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut payload = encode_frame(&random_frame(&mut rng));
        for _ in 0..8 {
            match rng.gen_range(0u32..3) {
                0 if !payload.is_empty() => {
                    let i = rng.gen_range(0..payload.len());
                    payload[i] = rng.gen_range(0u8..=255);
                }
                1 => payload.truncate(rng.gen_range(0..=payload.len())),
                _ => payload.push(rng.gen_range(0u8..=255)),
            }
            let _ = decode_frame(&payload); // must not panic
        }
        prop_assert!(true);
    }
}
