//! Deterministic fault injection for the shard protocol.
//!
//! [`FaultyEnd`] wraps the *write* side of a [`PipeEnd`] with a
//! frame-aware fault injector driven by a seeded [`FaultPlan`]: it
//! re-frames the byte stream (length prefix + payload), and per complete
//! frame may **reorder** it with its successor or **sever** the
//! connection — cleanly between frames or mid-frame, so the peer sees a
//! truncated stream. Reads pass through untouched.
//!
//! The injector is what the churn proptests drive the fleet with: severs
//! exercise the client's reconnect-and-replay path (a dropped frame is
//! only ever dropped *together with* a sever, so the go-back-N replay is
//! what recovers it — an unconditional drop would silently lose a request
//! with no failure signal for anyone to act on), and reorders exercise
//! the index-keyed correlation (requests carry explicit coordinates, so
//! arrival order is not load-bearing). Reordering is restricted to
//! `Request` frames: holding back a control frame would stall its
//! strictly-one-outstanding reply loop rather than test anything.
//!
//! All randomness is a seeded SplitMix64 stream — the same plan over the
//! same traffic injects the same faults, so failures shrink and replay.

use crate::codec::TAG_REQUEST_BYTE;
use crate::pipe::PipeEnd;
use std::io::{self, Read, Write};

/// The seeded fault schedule of one [`FaultyEnd`] connection.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    seed: u64,
    /// Per-request-frame probability (in 1/1000) of holding the frame
    /// back and delivering it after its successor.
    swap_per_mille: u32,
    /// Sever the connection when this many complete frames have passed
    /// (`None` = never).
    sever_after_frames: Option<u64>,
    /// When severing, first deliver half of the fatal frame's bytes, so
    /// the peer reads a truncated frame instead of a clean EOF.
    sever_mid_frame: bool,
}

impl FaultPlan {
    /// A plan that injects nothing (pass-through) under `seed`.
    pub const fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            swap_per_mille: 0,
            sever_after_frames: None,
            sever_mid_frame: false,
        }
    }

    /// Enables adjacent-frame reordering of request frames with the given
    /// probability in 1/1000 (clamped to ≤ 1000).
    pub const fn swap_per_mille(mut self, per_mille: u32) -> Self {
        self.swap_per_mille = if per_mille > 1000 { 1000 } else { per_mille };
        self
    }

    /// Severs the connection once `frames` complete frames have passed.
    pub const fn sever_after(mut self, frames: u64) -> Self {
        self.sever_after_frames = Some(frames);
        self
    }

    /// Makes the sever land mid-frame: the peer receives a truncated
    /// frame (half its bytes) instead of a clean between-frames EOF.
    pub const fn sever_mid_frame(mut self) -> Self {
        self.sever_mid_frame = true;
        self
    }
}

/// SplitMix64: tiny, seedable, and good enough to schedule faults.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fault-injecting wrapper over one [`PipeEnd`] (see the module docs).
///
/// Write it like any byte sink: bytes are buffered until a complete
/// length-prefixed frame accumulates, then the frame is delivered,
/// held-and-swapped, or the connection is severed according to the
/// [`FaultPlan`]. After a sever every write fails with `BrokenPipe` and
/// the underlying pipe is closed in both directions, so the peer (and any
/// reader clone of the same end) observes the link death. Reads delegate
/// to the pipe untouched.
#[derive(Debug)]
pub struct FaultyEnd {
    inner: PipeEnd,
    plan: FaultPlan,
    rng: u64,
    frames_passed: u64,
    /// A request frame held back for an adjacent swap.
    held: Option<Vec<u8>>,
    /// Bytes of the not-yet-complete frame being accumulated.
    partial: Vec<u8>,
    severed: bool,
}

impl FaultyEnd {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: PipeEnd, plan: FaultPlan) -> Self {
        FaultyEnd {
            inner,
            plan,
            rng: plan.seed,
            frames_passed: 0,
            held: None,
            partial: Vec::new(),
            severed: false,
        }
    }

    /// Closes the connection cleanly: any held frame is flushed first, so
    /// a swap at end-of-stream never turns into a drop.
    pub fn close(&mut self) {
        if !self.severed {
            if let Some(held) = self.held.take() {
                let _ = self.inner.write_all(&held);
            }
        }
        self.inner.close();
    }

    fn sever(&mut self) -> io::Error {
        self.severed = true;
        self.held = None;
        self.partial.clear();
        self.inner.close();
        io::Error::new(io::ErrorKind::BrokenPipe, "fault plan severed the link")
    }

    /// Dispatches one complete frame (length prefix included) through the
    /// fault plan.
    fn pass_frame(&mut self, frame: Vec<u8>) -> io::Result<()> {
        self.frames_passed += 1;
        if let Some(n) = self.plan.sever_after_frames {
            if self.frames_passed > n {
                if self.plan.sever_mid_frame {
                    let _ = self.inner.write_all(&frame[..frame.len() / 2]);
                }
                return Err(self.sever());
            }
        }
        let is_request = frame.get(4) == Some(&TAG_REQUEST_BYTE);
        if is_request
            && self.held.is_none()
            && self.plan.swap_per_mille > 0
            && splitmix64(&mut self.rng) % 1000 < u64::from(self.plan.swap_per_mille)
        {
            self.held = Some(frame);
            return Ok(());
        }
        self.inner.write_all(&frame)?;
        if let Some(held) = self.held.take() {
            self.inner.write_all(&held)?;
        }
        Ok(())
    }
}

impl Read for FaultyEnd {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl Write for FaultyEnd {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.severed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "fault plan severed the link",
            ));
        }
        self.partial.extend_from_slice(buf);
        // Deliver every complete length-prefixed frame accumulated so far.
        while self.partial.len() >= 4 {
            let len = u32::from_le_bytes(self.partial[..4].try_into().expect("4 bytes")) as usize;
            if self.partial.len() < 4 + len {
                break;
            }
            let rest = self.partial.split_off(4 + len);
            let frame = std::mem::replace(&mut self.partial, rest);
            self.pass_frame(frame)?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.severed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "fault plan severed the link",
            ));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{duplex, read_frame, write_frame, Frame, QosClass, ShardRequest};
    use aimc_dnn::{Shape, Tensor};

    fn request(index: u64) -> Frame {
        Frame::Request(ShardRequest {
            global_index: index,
            class: QosClass::default(),
            image: Tensor::from_vec(Shape::new(1, 1, 1), vec![index as f32]),
        })
    }

    fn indices_of(frames: &[Frame]) -> Vec<u64> {
        frames
            .iter()
            .map(|f| match f {
                Frame::Request(r) => r.global_index,
                other => panic!("unexpected frame {other:?}"),
            })
            .collect()
    }

    #[test]
    fn passthrough_plan_preserves_the_stream() {
        let (a, mut b) = duplex();
        let mut faulty = FaultyEnd::new(a, FaultPlan::new(1));
        for i in 0..4 {
            write_frame(&mut faulty, &request(i)).unwrap();
        }
        faulty.close();
        let mut got = Vec::new();
        while let Ok(f) = read_frame(&mut b) {
            got.push(f);
        }
        assert_eq!(indices_of(&got), vec![0, 1, 2, 3]);
    }

    #[test]
    fn swaps_reorder_adjacent_requests_without_loss() {
        // Always-swap: every request is held and delivered after its
        // successor, so pairs arrive transposed but nothing is lost.
        let (a, mut b) = duplex();
        let mut faulty = FaultyEnd::new(a, FaultPlan::new(7).swap_per_mille(1000));
        for i in 0..4 {
            write_frame(&mut faulty, &request(i)).unwrap();
        }
        faulty.close();
        let mut got = Vec::new();
        while let Ok(f) = read_frame(&mut b) {
            got.push(f);
        }
        let mut indices = indices_of(&got);
        assert_eq!(indices, vec![1, 0, 3, 2], "adjacent pairs transposed");
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2, 3], "no frame lost or duplicated");
    }

    #[test]
    fn a_held_frame_is_flushed_on_close() {
        let (a, mut b) = duplex();
        let mut faulty = FaultyEnd::new(a, FaultPlan::new(7).swap_per_mille(1000));
        write_frame(&mut faulty, &request(42)).unwrap();
        faulty.close();
        assert_eq!(indices_of(&[read_frame(&mut b).unwrap()]), vec![42]);
    }

    #[test]
    fn control_frames_are_never_reordered() {
        let (a, mut b) = duplex();
        let mut faulty = FaultyEnd::new(a, FaultPlan::new(7).swap_per_mille(1000));
        write_frame(&mut faulty, &Frame::Drain).unwrap();
        // Delivered immediately despite the always-swap plan.
        assert_eq!(read_frame(&mut b).unwrap(), Frame::Drain);
        faulty.close();
    }

    #[test]
    fn sever_kills_the_link_after_the_budgeted_frames() {
        let (a, mut b) = duplex();
        let mut faulty = FaultyEnd::new(a, FaultPlan::new(3).sever_after(2));
        write_frame(&mut faulty, &request(0)).unwrap();
        write_frame(&mut faulty, &request(1)).unwrap();
        let err = write_frame(&mut faulty, &request(2)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        // Subsequent writes stay dead.
        assert!(write_frame(&mut faulty, &request(3)).is_err());
        // The peer reads the two delivered frames, then a clean EOF.
        assert_eq!(indices_of(&[read_frame(&mut b).unwrap()]), vec![0]);
        assert_eq!(indices_of(&[read_frame(&mut b).unwrap()]), vec![1]);
        assert_eq!(
            read_frame(&mut b).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn mid_frame_sever_truncates_the_fatal_frame() {
        let (a, mut b) = duplex();
        let mut faulty = FaultyEnd::new(a, FaultPlan::new(3).sever_after(1).sever_mid_frame());
        write_frame(&mut faulty, &request(0)).unwrap();
        assert!(write_frame(&mut faulty, &request(1)).is_err());
        assert_eq!(indices_of(&[read_frame(&mut b).unwrap()]), vec![0]);
        // Half of frame 1 arrived: the reader sees a truncated stream,
        // not a clean between-frames EOF.
        assert_eq!(
            read_frame(&mut b).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        let mut probe = [0u8; 1];
        assert_eq!(b.read(&mut probe).unwrap(), 0, "pipe is closed");
    }
}
