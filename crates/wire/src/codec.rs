//! The hand-rolled byte codec.
//!
//! Layout: every frame is `u32 LE payload length` followed by the payload,
//! and every payload starts with a one-byte tag. All integers are
//! little-endian; `f32`/`f64` travel as their IEEE-754 bit patterns, so
//! tensor data survives the wire **bit for bit** (NaN payloads included).
//! Decoding is total: malformed input yields `io::ErrorKind::InvalidData`,
//! never a panic — the length prefix is also bounded, so a corrupt stream
//! cannot trigger an absurd allocation.

use crate::{
    Frame, IndexLease, NoiseSpec, Priority, QosClass, ReplyError, ShardReply, ShardRequest,
    ShardSpec, WireClassStats, WireStats,
};
use aimc_dnn::{Shape, Tensor};
use aimc_parallel::Parallelism;
use aimc_xbar::XbarConfig;
use std::io::{self, Read, Write};
use std::time::Duration;

/// Wire sentinel for "no deadline" in a [`QosClass`] field (no request
/// legitimately waits 584 years).
const NO_DEADLINE_NS: u64 = u64::MAX;

/// Upper bound on an encoded frame, as a corruption guard: the largest
/// legitimate payload is one image/logits tensor (a few MB for the paper's
/// 3×256×256 inputs), far below this.
const MAX_FRAME_LEN: u32 = 1 << 28;

// Frame tags. Stable protocol constants — append, never renumber.
const TAG_REQUEST: u8 = 0;
const TAG_REPLY: u8 = 1;
const TAG_LEASE: u8 = 2;
const TAG_DRAIN: u8 = 3;
const TAG_DRAIN_DONE: u8 = 4;
const TAG_SHUTDOWN: u8 = 5;
const TAG_SHUTDOWN_DONE: u8 = 6;
const TAG_APPLY_DRIFT: u8 = 7;
const TAG_DRIFT_DONE: u8 = 8;
const TAG_REPROGRAM: u8 = 9;
const TAG_REPROGRAM_DONE: u8 = 10;
const TAG_SET_PARALLELISM: u8 = 11;
const TAG_PARALLELISM_SET: u8 = 12;
const TAG_STATS_PROBE: u8 = 13;
const TAG_STATS: u8 = 14;
const TAG_HELLO: u8 = 15;
const TAG_HELLO_ACK: u8 = 16;
const TAG_REPLAY_LEASES: u8 = 17;
const TAG_SPEC_PROBE: u8 = 18;
const TAG_SPEC: u8 = 19;

/// The tag byte of an encoded [`Frame::Request`] payload (the first byte
/// after the length prefix) — used by the fault injector to restrict
/// reordering to request frames.
pub(crate) const TAG_REQUEST_BYTE: u8 = TAG_REQUEST;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// ---------------------------------------------------------------- encoding

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_tensor(buf: &mut Vec<u8>, t: &Tensor) {
    let shape = t.shape();
    put_u32(buf, shape.c as u32);
    put_u32(buf, shape.h as u32);
    put_u32(buf, shape.w as u32);
    for &v in t.data() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_class(buf: &mut Vec<u8>, class: QosClass) {
    buf.push(class.priority.rank() as u8);
    let deadline_ns = class
        .deadline
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(NO_DEADLINE_NS - 1))
        .map(|ns| ns.min(NO_DEADLINE_NS - 1))
        .unwrap_or(NO_DEADLINE_NS);
    put_u64(buf, deadline_ns);
}

fn put_parallelism(buf: &mut Vec<u8>, par: Parallelism) {
    match par {
        Parallelism::Serial => buf.push(0),
        Parallelism::Threads(n) => {
            buf.push(1);
            put_u64(buf, n as u64);
        }
        Parallelism::PinnedThreads(n) => {
            buf.push(2);
            put_u64(buf, n as u64);
        }
    }
}

fn put_spec(buf: &mut Vec<u8>, spec: &ShardSpec) {
    put_str(buf, &spec.model_id);
    let cfg = &spec.xbar_cfg;
    put_u64(buf, cfg.rows as u64);
    put_u64(buf, cfg.cols as u64);
    put_u32(buf, cfg.weight_bits);
    put_u32(buf, cfg.dac_bits);
    put_u32(buf, cfg.adc_bits);
    put_f64(buf, cfg.prog_noise_sigma);
    put_f64(buf, cfg.read_noise_sigma);
    put_f64(buf, cfg.drift_nu);
    put_f64(buf, cfg.x_clip);
    put_f64(buf, cfg.adc_headroom);
    put_f64(buf, cfg.mvm_latency_ns);
    put_f64(buf, cfg.mvm_energy_nj);
    put_f64(buf, spec.noise.prog_sigma);
    put_f64(buf, spec.noise.read_sigma);
    put_f64(buf, spec.noise.drift_nu);
    put_u64(buf, spec.seed);
}

fn put_stats(buf: &mut Vec<u8>, s: &WireStats) {
    put_u64(buf, s.submitted);
    put_u64(buf, s.completed);
    put_u64(buf, s.rejected);
    put_u64(buf, s.batches);
    put_u64(buf, s.dispatched);
    put_u64(buf, s.max_batch_observed);
    put_u64(buf, s.ecn_marks);
    put_u64(buf, s.drift_age);
    put_u64(buf, s.reprograms);
    // Explicit class count: a decoder built against a different
    // Priority::COUNT must reject the snapshot instead of silently
    // truncating or misaligning the per-class ledgers.
    put_u32(buf, s.classes.len() as u32);
    for c in &s.classes {
        put_u64(buf, c.admitted);
        put_u64(buf, c.shed_queue_full);
        put_u64(buf, c.shed_class_budget);
        put_u64(buf, c.shed_overload);
        put_u64(buf, c.infeasible);
        put_u64(buf, c.deadline_misses);
        put_u32(buf, c.latencies_ns.len() as u32);
        for &l in &c.latencies_ns {
            put_u64(buf, l);
        }
    }
    put_u32(buf, s.queue_waits_ns.len() as u32);
    for &w in &s.queue_waits_ns {
        put_u64(buf, w);
    }
}

/// Encodes one frame to its payload bytes (tag + body, **without** the
/// length prefix — [`write_frame`] adds it).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::new();
    match frame {
        Frame::Request(req) => {
            buf.push(TAG_REQUEST);
            put_u64(&mut buf, req.global_index);
            put_class(&mut buf, req.class);
            put_tensor(&mut buf, &req.image);
        }
        Frame::Reply(rep) => {
            buf.push(TAG_REPLY);
            put_u64(&mut buf, rep.global_index);
            buf.push(u8::from(rep.marked));
            match &rep.outcome {
                Ok(t) => {
                    buf.push(0);
                    put_tensor(&mut buf, t);
                }
                Err(ReplyError::ShutDown) => buf.push(1),
                Err(ReplyError::Canceled) => buf.push(2),
                Err(ReplyError::Exec(msg)) => {
                    buf.push(3);
                    put_str(&mut buf, msg);
                }
            }
        }
        Frame::Lease(lease) => {
            buf.push(TAG_LEASE);
            put_u64(&mut buf, lease.start);
            put_u64(&mut buf, lease.len);
        }
        Frame::Drain => buf.push(TAG_DRAIN),
        Frame::DrainDone => buf.push(TAG_DRAIN_DONE),
        Frame::Shutdown => buf.push(TAG_SHUTDOWN),
        Frame::ShutdownDone => buf.push(TAG_SHUTDOWN_DONE),
        Frame::ApplyDrift(t) => {
            buf.push(TAG_APPLY_DRIFT);
            put_f64(&mut buf, *t);
        }
        Frame::DriftDone(modeled) => {
            buf.push(TAG_DRIFT_DONE);
            buf.push(u8::from(*modeled));
        }
        Frame::Reprogram => buf.push(TAG_REPROGRAM),
        Frame::ReprogramDone(result) => {
            buf.push(TAG_REPROGRAM_DONE);
            match result {
                Ok(()) => buf.push(0),
                Err(msg) => {
                    buf.push(1);
                    put_str(&mut buf, msg);
                }
            }
        }
        Frame::SetParallelism(par) => {
            buf.push(TAG_SET_PARALLELISM);
            put_parallelism(&mut buf, *par);
        }
        Frame::ParallelismSet => buf.push(TAG_PARALLELISM_SET),
        Frame::StatsProbe => buf.push(TAG_STATS_PROBE),
        Frame::Stats(s) => {
            buf.push(TAG_STATS);
            put_stats(&mut buf, s);
        }
        Frame::Hello { resumed } => {
            buf.push(TAG_HELLO);
            buf.push(u8::from(*resumed));
        }
        Frame::HelloAck => buf.push(TAG_HELLO_ACK),
        Frame::ReplayLeases(leases) => {
            buf.push(TAG_REPLAY_LEASES);
            put_u32(&mut buf, leases.len() as u32);
            for lease in leases {
                put_u64(&mut buf, lease.start);
                put_u64(&mut buf, lease.len);
            }
        }
        Frame::SpecProbe => buf.push(TAG_SPEC_PROBE),
        Frame::Spec(spec) => {
            buf.push(TAG_SPEC);
            put_spec(&mut buf, spec);
        }
    }
    buf
}

// ---------------------------------------------------------------- decoding

/// A cursor over a decoded payload with bounds-checked readers.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("frame payload truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("invalid UTF-8 in string field"))
    }

    fn tensor(&mut self) -> io::Result<Tensor> {
        let c = self.u32()? as usize;
        let h = self.u32()? as usize;
        let w = self.u32()? as usize;
        let shape = Shape::new(c, h, w);
        let numel = c
            .checked_mul(h)
            .and_then(|ch| ch.checked_mul(w))
            .ok_or_else(|| bad("tensor shape overflows"))?;
        let bytes = self.take(
            numel
                .checked_mul(4)
                .ok_or_else(|| bad("tensor too large"))?,
        )?;
        let data = bytes
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes(b.try_into().unwrap()))
            .collect();
        Ok(Tensor::from_vec(shape, data))
    }

    fn class(&mut self) -> io::Result<QosClass> {
        let rank = self.u8()?;
        let priority = Priority::from_rank(rank)
            .ok_or_else(|| bad(format!("unknown priority rank {rank}")))?;
        let deadline_ns = self.u64()?;
        Ok(QosClass {
            priority,
            deadline: (deadline_ns != NO_DEADLINE_NS).then(|| Duration::from_nanos(deadline_ns)),
        })
    }

    fn parallelism(&mut self) -> io::Result<Parallelism> {
        match self.u8()? {
            0 => Ok(Parallelism::Serial),
            1 => Ok(Parallelism::Threads(self.u64()? as usize)),
            2 => Ok(Parallelism::PinnedThreads(self.u64()? as usize)),
            t => Err(bad(format!("unknown parallelism tag {t}"))),
        }
    }

    fn class_stats(&mut self) -> io::Result<WireClassStats> {
        let admitted = self.u64()?;
        let shed_queue_full = self.u64()?;
        let shed_class_budget = self.u64()?;
        let shed_overload = self.u64()?;
        let infeasible = self.u64()?;
        let deadline_misses = self.u64()?;
        let n = self.u32()? as usize;
        let mut latencies_ns = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            latencies_ns.push(self.u64()?);
        }
        Ok(WireClassStats {
            admitted,
            shed_queue_full,
            shed_class_budget,
            shed_overload,
            infeasible,
            deadline_misses,
            latencies_ns,
        })
    }

    fn spec(&mut self) -> io::Result<ShardSpec> {
        let model_id = self.str()?;
        let xbar_cfg = XbarConfig {
            rows: self.u64()? as usize,
            cols: self.u64()? as usize,
            weight_bits: self.u32()?,
            dac_bits: self.u32()?,
            adc_bits: self.u32()?,
            prog_noise_sigma: self.f64()?,
            read_noise_sigma: self.f64()?,
            drift_nu: self.f64()?,
            x_clip: self.f64()?,
            adc_headroom: self.f64()?,
            mvm_latency_ns: self.f64()?,
            mvm_energy_nj: self.f64()?,
        };
        let noise = NoiseSpec {
            prog_sigma: self.f64()?,
            read_sigma: self.f64()?,
            drift_nu: self.f64()?,
        };
        let seed = self.u64()?;
        Ok(ShardSpec {
            model_id,
            xbar_cfg,
            noise,
            seed,
        })
    }

    fn stats(&mut self) -> io::Result<WireStats> {
        let submitted = self.u64()?;
        let completed = self.u64()?;
        let rejected = self.u64()?;
        let batches = self.u64()?;
        let dispatched = self.u64()?;
        let max_batch_observed = self.u64()?;
        let ecn_marks = self.u64()?;
        let drift_age = self.u64()?;
        let reprograms = self.u64()?;
        let n_classes = self.u32()? as usize;
        if n_classes != Priority::COUNT {
            return Err(bad(format!(
                "stats class count {n_classes} does not match protocol count {}",
                Priority::COUNT
            )));
        }
        let mut classes: [WireClassStats; Priority::COUNT] = Default::default();
        for c in classes.iter_mut() {
            *c = self.class_stats()?;
        }
        let n = self.u32()? as usize;
        let mut queue_waits_ns = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            queue_waits_ns.push(self.u64()?);
        }
        Ok(WireStats {
            submitted,
            completed,
            rejected,
            batches,
            dispatched,
            max_batch_observed,
            ecn_marks,
            drift_age,
            reprograms,
            classes,
            queue_waits_ns,
        })
    }

    fn finish(self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad("trailing bytes after frame payload"))
        }
    }
}

/// Decodes one frame from its payload bytes (the inverse of
/// [`encode_frame`]); rejects truncated, trailing, or unknown-tag input
/// with `InvalidData`.
pub fn decode_frame(payload: &[u8]) -> io::Result<Frame> {
    let mut cur = Cur {
        buf: payload,
        pos: 0,
    };
    let frame = match cur.u8()? {
        TAG_REQUEST => Frame::Request(ShardRequest {
            global_index: cur.u64()?,
            class: cur.class()?,
            image: cur.tensor()?,
        }),
        TAG_REPLY => {
            let global_index = cur.u64()?;
            let marked = cur.u8()? != 0;
            let outcome = match cur.u8()? {
                0 => Ok(cur.tensor()?),
                1 => Err(ReplyError::ShutDown),
                2 => Err(ReplyError::Canceled),
                3 => Err(ReplyError::Exec(cur.str()?)),
                t => return Err(bad(format!("unknown reply outcome tag {t}"))),
            };
            Frame::Reply(ShardReply {
                global_index,
                marked,
                outcome,
            })
        }
        TAG_LEASE => Frame::Lease(IndexLease {
            start: cur.u64()?,
            len: cur.u64()?,
        }),
        TAG_DRAIN => Frame::Drain,
        TAG_DRAIN_DONE => Frame::DrainDone,
        TAG_SHUTDOWN => Frame::Shutdown,
        TAG_SHUTDOWN_DONE => Frame::ShutdownDone,
        TAG_APPLY_DRIFT => Frame::ApplyDrift(cur.f64()?),
        TAG_DRIFT_DONE => Frame::DriftDone(cur.u8()? != 0),
        TAG_REPROGRAM => Frame::Reprogram,
        TAG_REPROGRAM_DONE => match cur.u8()? {
            0 => Frame::ReprogramDone(Ok(())),
            1 => Frame::ReprogramDone(Err(cur.str()?)),
            t => return Err(bad(format!("unknown reprogram outcome tag {t}"))),
        },
        TAG_SET_PARALLELISM => Frame::SetParallelism(cur.parallelism()?),
        TAG_PARALLELISM_SET => Frame::ParallelismSet,
        TAG_STATS_PROBE => Frame::StatsProbe,
        TAG_STATS => Frame::Stats(cur.stats()?),
        TAG_HELLO => Frame::Hello {
            resumed: cur.u8()? != 0,
        },
        TAG_HELLO_ACK => Frame::HelloAck,
        TAG_REPLAY_LEASES => {
            let n = cur.u32()? as usize;
            let mut leases = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                leases.push(IndexLease {
                    start: cur.u64()?,
                    len: cur.u64()?,
                });
            }
            Frame::ReplayLeases(leases)
        }
        TAG_SPEC_PROBE => Frame::SpecProbe,
        TAG_SPEC => Frame::Spec(cur.spec()?),
        t => return Err(bad(format!("unknown frame tag {t}"))),
    };
    cur.finish()?;
    Ok(frame)
}

// ---------------------------------------------------------------- framing

/// Writes one length-prefixed frame and flushes the writer (a frame is a
/// complete protocol action; latency beats buffering here).
///
/// # Errors
/// Any I/O error from the underlying writer.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let payload = encode_frame(frame);
    let len = u32::try_from(payload.len()).map_err(|_| bad("frame exceeds u32 length"))?;
    if len > MAX_FRAME_LEN {
        return Err(bad("frame exceeds protocol maximum"));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// # Errors
/// `UnexpectedEof` on a cleanly closed stream (no partial frame pending),
/// `InvalidData` on a malformed frame, or any underlying I/O error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(bad("frame length exceeds protocol maximum"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    decode_frame(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(vals: &[f32]) -> Tensor {
        Tensor::from_vec(Shape::new(1, 1, vals.len()), vals.to_vec())
    }

    #[test]
    fn request_reply_round_trip_is_bit_exact() {
        // NaN and negative zero: equality of the re-decoded tensor is
        // checked on raw bits, the same bar the fleet invariance sets.
        let image = tensor(&[1.5, -0.0, f32::NAN, f32::MIN_POSITIVE]);
        let frames = [
            Frame::Request(ShardRequest {
                global_index: u64::MAX,
                class: QosClass::high().with_deadline(Duration::from_micros(250)),
                image: image.clone(),
            }),
            Frame::Reply(ShardReply {
                global_index: 7,
                marked: true,
                outcome: Ok(image),
            }),
            Frame::Reply(ShardReply {
                global_index: 8,
                marked: false,
                outcome: Err(ReplyError::Exec("shape mismatch".into())),
            }),
        ];
        for f in &frames {
            let decoded = decode_frame(&encode_frame(f)).unwrap();
            match (f, &decoded) {
                (Frame::Request(a), Frame::Request(b)) => {
                    assert_eq!(a.global_index, b.global_index);
                    assert_eq!(a.class, b.class);
                    let bits =
                        |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                    assert_eq!(bits(&a.image), bits(&b.image));
                    assert_eq!(a.image.shape(), b.image.shape());
                }
                (Frame::Reply(a), Frame::Reply(b)) => {
                    assert_eq!(a.global_index, b.global_index);
                    assert_eq!(a.marked, b.marked);
                    match (&a.outcome, &b.outcome) {
                        (Ok(x), Ok(y)) => {
                            let bits = |t: &Tensor| {
                                t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                            };
                            assert_eq!(bits(x), bits(y));
                        }
                        (Err(x), Err(y)) => assert_eq!(x, y),
                        _ => panic!("outcome kind changed over the wire"),
                    }
                }
                _ => panic!("frame kind changed over the wire"),
            }
        }
    }

    #[test]
    fn control_frames_round_trip() {
        let frames = [
            Frame::Hello { resumed: false },
            Frame::Hello { resumed: true },
            Frame::HelloAck,
            Frame::ReplayLeases(Vec::new()),
            Frame::ReplayLeases(vec![IndexLease::new(0, 4), IndexLease::new(96, 32)]),
            Frame::Lease(IndexLease::new(64, 16)),
            Frame::Drain,
            Frame::DrainDone,
            Frame::Shutdown,
            Frame::ShutdownDone,
            Frame::ApplyDrift(1e4),
            Frame::DriftDone(true),
            Frame::DriftDone(false),
            Frame::Reprogram,
            Frame::ReprogramDone(Ok(())),
            Frame::ReprogramDone(Err("weights missing".into())),
            Frame::SetParallelism(Parallelism::Serial),
            Frame::SetParallelism(Parallelism::Threads(8)),
            Frame::SetParallelism(Parallelism::PinnedThreads(6)),
            Frame::ParallelismSet,
            Frame::StatsProbe,
            Frame::Stats(WireStats {
                submitted: 10,
                completed: 9,
                rejected: 1,
                batches: 4,
                dispatched: 9,
                max_batch_observed: 3,
                ecn_marks: 5,
                drift_age: 2,
                reprograms: 1,
                classes: [
                    WireClassStats {
                        admitted: 4,
                        shed_queue_full: 0,
                        shed_class_budget: 0,
                        shed_overload: 0,
                        infeasible: 1,
                        deadline_misses: 2,
                        latencies_ns: vec![10, 20],
                    },
                    WireClassStats {
                        admitted: 3,
                        shed_queue_full: 1,
                        shed_class_budget: 0,
                        shed_overload: 2,
                        infeasible: 0,
                        deadline_misses: 0,
                        latencies_ns: vec![u64::MAX],
                    },
                    WireClassStats {
                        admitted: 2,
                        shed_queue_full: 0,
                        shed_class_budget: 7,
                        shed_overload: 9,
                        infeasible: 0,
                        deadline_misses: 1,
                        latencies_ns: Vec::new(),
                    },
                ],
                queue_waits_ns: vec![0, 1_000, u64::MAX],
            }),
        ];
        for f in &frames {
            assert_eq!(&decode_frame(&encode_frame(f)).unwrap(), f);
        }
    }

    #[test]
    fn spec_frames_round_trip() {
        let frames = [
            Frame::SpecProbe,
            Frame::Spec(ShardSpec::golden("resnet18")),
            Frame::Spec(ShardSpec::default()),
            Frame::Spec(ShardSpec::analog(
                "vgg-a",
                XbarConfig::hermes_256().with_size(32, 4),
                0xDEAD_BEEF,
            )),
            Frame::Spec(ShardSpec {
                model_id: String::new(), // empty ids survive too
                xbar_cfg: XbarConfig::ideal(1, 1),
                noise: NoiseSpec {
                    prog_sigma: f64::MIN_POSITIVE,
                    read_sigma: -0.0,
                    drift_nu: 0.05,
                },
                seed: u64::MAX,
            }),
        ];
        for f in &frames {
            let decoded = decode_frame(&encode_frame(f)).unwrap();
            match (f, &decoded) {
                (Frame::SpecProbe, Frame::SpecProbe) => {}
                (Frame::Spec(a), Frame::Spec(b)) => {
                    assert_eq!(a.model_id, b.model_id);
                    assert_eq!(a.seed, b.seed);
                    assert_eq!(a.xbar_cfg, b.xbar_cfg);
                    // Float fields compare on raw bits (the -0.0 case).
                    assert_eq!(a.noise.prog_sigma.to_bits(), b.noise.prog_sigma.to_bits());
                    assert_eq!(a.noise.read_sigma.to_bits(), b.noise.read_sigma.to_bits());
                    assert_eq!(a.noise.drift_nu.to_bits(), b.noise.drift_nu.to_bits());
                }
                _ => panic!("frame kind changed over the wire"),
            }
        }
        // Truncations of a spec frame are decode errors, never panics.
        let good = encode_frame(&Frame::Spec(ShardSpec::analog(
            "m",
            XbarConfig::hermes_256(),
            7,
        )));
        for cut in 0..good.len() {
            assert!(decode_frame(&good[..cut]).is_err());
        }
    }

    /// The analog constructor derives the noise channels from the crossbar
    /// configuration, and the golden constructor is seed-free: all golden
    /// shards of one model are replicas.
    #[test]
    fn spec_constructors_encode_the_grouping_rules() {
        let cfg = XbarConfig::hermes_256();
        let a = ShardSpec::analog("m", cfg.clone(), 7);
        assert_eq!(a.noise.prog_sigma, cfg.prog_noise_sigma);
        assert_eq!(a.noise.read_sigma, cfg.read_noise_sigma);
        assert_eq!(a.noise.drift_nu, cfg.drift_nu);
        assert_ne!(a, ShardSpec::analog("m", cfg.clone(), 8), "seed matters");
        assert_ne!(
            a,
            ShardSpec::analog("m2", cfg, 7),
            "model id matters even at equal device recipes"
        );
        assert_eq!(ShardSpec::golden("g"), ShardSpec::golden("g"));
        assert_eq!(ShardSpec::default().model_id, "default");
        assert_eq!(NoiseSpec::none(), NoiseSpec::default());
    }

    #[test]
    fn framing_round_trips_over_a_byte_stream() {
        let frames = [
            Frame::Drain,
            Frame::Request(ShardRequest {
                global_index: 3,
                class: QosClass::low(),
                image: tensor(&[1.0, 2.0]),
            }),
            Frame::StatsProbe,
        ];
        let mut stream = Vec::new();
        for f in &frames {
            write_frame(&mut stream, f).unwrap();
        }
        let mut r = stream.as_slice();
        for f in &frames {
            assert_eq!(&read_frame(&mut r).unwrap(), f);
        }
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn malformed_input_is_invalid_data_not_a_panic() {
        // Unknown tag.
        assert_eq!(
            decode_frame(&[200]).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Truncated payloads at every prefix of a valid frame.
        let good = encode_frame(&Frame::Request(ShardRequest {
            global_index: 1,
            class: QosClass::default().with_deadline(Duration::from_millis(5)),
            image: tensor(&[1.0, 2.0, 3.0]),
        }));
        for cut in 0..good.len() {
            assert!(
                decode_frame(&good[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        // Trailing garbage.
        let mut long = good.clone();
        long.push(0);
        assert!(decode_frame(&long).is_err());
        // Oversized declared length never allocates absurdly.
        let mut stream: &[u8] = &u32::MAX.to_le_bytes();
        assert_eq!(
            read_frame(&mut stream).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Tensor whose declared shape overflows usize.
        let mut evil = vec![TAG_REQUEST];
        evil.extend_from_slice(&0u64.to_le_bytes());
        evil.push(0); // valid priority rank
        evil.extend_from_slice(&u64::MAX.to_le_bytes()); // no deadline
        for _ in 0..3 {
            evil.extend_from_slice(&u32::MAX.to_le_bytes());
        }
        assert!(decode_frame(&evil).is_err());
        // Unknown priority rank is rejected, not wrapped around.
        let mut bad_rank = vec![TAG_REQUEST];
        bad_rank.extend_from_slice(&0u64.to_le_bytes());
        bad_rank.push(17);
        bad_rank.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            decode_frame(&bad_rank).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    /// A stats snapshot whose class count disagrees with the protocol's
    /// [`Priority::COUNT`] (codec version skew) is a decode error — never
    /// a silent truncation of the per-class ledgers.
    #[test]
    fn mismatched_stats_class_count_is_a_decode_error() {
        let stats = WireStats {
            submitted: 3,
            completed: 3,
            ..WireStats::default()
        };
        let mut payload = encode_frame(&Frame::Stats(stats.clone()));
        // Round trip at the correct count first, so the tamper below is
        // provably the only difference.
        assert_eq!(decode_frame(&payload).unwrap(), Frame::Stats(stats));
        // The class-count field sits right after the tag byte and the
        // nine u64 counters.
        let count_at = 1 + 9 * 8;
        assert_eq!(
            u32::from_le_bytes(payload[count_at..count_at + 4].try_into().unwrap()),
            Priority::COUNT as u32
        );
        payload[count_at..count_at + 4].copy_from_slice(&2u32.to_le_bytes());
        let err = decode_frame(&payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("class count"),
            "error names the skew: {err}"
        );
    }
}
