//! # aimc-wire — the shard wire protocol
//!
//! The serving fleet spreads replica shards across hosts by replacing the
//! in-process `ServeHandle` hop with a thin command interface — the same
//! shape the 64-core PCM chip and the heterogeneous IMC cluster papers use
//! for their compute fabrics: replicas behind a small set of serializable
//! commands. This crate defines that interface's *wire form*: the
//! [`Frame`] enum (requests, replies, and control frames), the
//! [`IndexLease`] blocks the router hands to transports, and a hand-rolled
//! little-endian byte codec ([`write_frame`] / [`read_frame`]) — no serde,
//! consistent with the workspace's shims-only dependency policy.
//!
//! The protocol is deliberately tiny. A client (the router's remote
//! transport) sends [`Frame::Request`] frames carrying `(global_index,
//! image)` and control frames; the server (a host wrapping its local
//! shard) answers with [`Frame::Reply`] frames keyed by the same global
//! index — replies correlate by stream coordinate, so they may interleave
//! freely with control traffic on one duplex byte stream. Control
//! commands are strictly request/reply (one outstanding at a time per
//! connection side), so no other correlation id is needed:
//!
//! | client frame | server frame | meaning |
//! |---|---|---|
//! | `Hello { resumed }` | `HelloAck` | (re)establish a protocol session; `resumed` announces a replay |
//! | `Request { global_index, image }` | `Reply { global_index, outcome }` | evaluate one image at its global stream coordinate |
//! | `Lease { start, len }` | *(none)* | advisory: subsequent requests draw indices from this block |
//! | `ReplayLeases(leases)` | *(none)* | advisory: retransmitted requests follow, drawn from these blocks |
//! | `Drain` | `DrainDone` | finish every accepted request |
//! | `Shutdown` | `ShutdownDone` | stop accepting, drain, stop the shard |
//! | `ApplyDrift(t_hours)` | `DriftDone(modeled)` | conductance drift on the replica |
//! | `Reprogram` | `ReprogramDone(result)` | rewrite the replica from its seed, rewind its stream |
//! | `SetParallelism(par)` | `ParallelismSet` | retune the shard's thread budget |
//! | `StatsProbe` | `Stats(stats)` | point-in-time serving statistics |
//! | `SpecProbe` | `Spec(spec)` | the shard's [`ShardSpec`] (model id + device/seed recipe) |
//!
//! Every frame is length-prefixed (`u32` LE) so a reader can never
//! misframe a stream; tensors travel as shape + raw `f32` LE bits, so the
//! fleet invariance survives the wire **bit for bit** — a remote shard's
//! logits are exactly the bytes the local executor produced.
//!
//! For tests (and single-process demos) the crate also ships
//! [`duplex`] — an in-memory, blocking, bidirectional byte pipe with the
//! same `Read`/`Write` surface as a `TcpStream` pair — and [`FaultyEnd`],
//! a frame-aware fault injector over a pipe end (seeded reorders and
//! severs) for exercising the fleet's reconnect-and-replay machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod fault;
mod pipe;

pub use codec::{decode_frame, encode_frame, read_frame, write_frame};
pub use fault::{FaultPlan, FaultyEnd};
pub use pipe::{duplex, PipeEnd, PIPE_CAPACITY};

use aimc_dnn::Tensor;
use aimc_parallel::Parallelism;
use aimc_xbar::XbarConfig;
use std::time::Duration;

/// The device-noise channels of one shard's analog stack, in wire form.
///
/// A shard's results depend on exactly three noise channels (programming
/// noise at write time, read noise per MVM, conductance drift over time)
/// plus the seed that keys them. Carrying the sigmas separately from the
/// full [`XbarConfig`] lets a registry compare "would these replicas
/// compute the same bits" at a glance, and keeps the door open for specs
/// whose noise is *not* derived from a crossbar model (e.g. golden shards,
/// where every channel is zero).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NoiseSpec {
    /// Relative programming-noise sigma per device (write-time).
    pub prog_sigma: f64,
    /// Relative read-noise sigma per device per MVM.
    pub read_sigma: f64,
    /// Conductance-drift exponent ν in `g(t) = g₀ (t/t₀)^(−ν)`.
    pub drift_nu: f64,
}

impl NoiseSpec {
    /// A noiseless spec (golden shards).
    pub const fn none() -> Self {
        NoiseSpec {
            prog_sigma: 0.0,
            read_sigma: 0.0,
            drift_nu: 0.0,
        }
    }

    /// The noise channels of a crossbar configuration.
    pub fn from_xbar(cfg: &XbarConfig) -> Self {
        NoiseSpec {
            prog_sigma: cfg.prog_noise_sigma,
            read_sigma: cfg.read_noise_sigma,
            drift_nu: cfg.drift_nu,
        }
    }
}

/// The full identity of what one shard computes: which model it serves and
/// the device/seed recipe that makes its logits bit-reproducible.
///
/// Two transports with **equal** specs are replicas — interchangeable
/// members of one model group whose logits at a given stream coordinate
/// are bit-identical. Two transports with different `model_id`s serve
/// different streams and must never share a lease. The router's registry
/// enforces both rules; a heterogeneous fleet is simply a fleet whose
/// specs differ across groups.
///
/// The spec is also a *rebuild recipe*: reprogramming a shard from
/// `(xbar_cfg, seed)` and replaying the fleet drift log reproduces its
/// incumbent replicas' conductances bit for bit — which is what makes
/// background recalibration and evict→rejoin invisible in the results.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSpec {
    /// The model (stream) this shard serves. Requests are routed by this
    /// id; each distinct id owns its own global index stream `0, 1, 2, …`.
    pub model_id: String,
    /// Crossbar geometry/resolution of the shard's analog arrays. Golden
    /// shards carry an ideal placeholder configuration.
    pub xbar_cfg: XbarConfig,
    /// The shard's device-noise channels.
    pub noise: NoiseSpec,
    /// The seed keying programming and read noise. Same `(xbar_cfg, seed)`
    /// ⇒ same conductances ⇒ same logits at the same coordinates.
    pub seed: u64,
}

impl ShardSpec {
    /// The model id of spec-less legacy transports and of the un-addressed
    /// submit path — the one group every homogeneous fleet lives in.
    pub const DEFAULT_MODEL_ID: &'static str = "default";

    /// The spec of an analog shard: noise channels derived from the
    /// crossbar configuration, keyed by `seed`.
    pub fn analog(model_id: impl Into<String>, xbar_cfg: XbarConfig, seed: u64) -> Self {
        let noise = NoiseSpec::from_xbar(&xbar_cfg);
        ShardSpec {
            model_id: model_id.into(),
            xbar_cfg,
            noise,
            seed,
        }
    }

    /// The spec of a golden (noiseless floating-point) shard. All golden
    /// shards of one model are replicas regardless of seed, so the spec is
    /// a constant per `model_id`.
    pub fn golden(model_id: impl Into<String>) -> Self {
        ShardSpec {
            model_id: model_id.into(),
            xbar_cfg: XbarConfig::ideal(256, 256),
            noise: NoiseSpec::none(),
            seed: 0,
        }
    }
}

impl Default for ShardSpec {
    /// The spec a legacy (spec-less) transport reports: golden shards of
    /// the model id `"default"`. All such transports group together, which
    /// preserves the pre-registry homogeneous-fleet behavior exactly.
    fn default() -> Self {
        ShardSpec::golden(Self::DEFAULT_MODEL_ID)
    }
}

/// Service priority of one request — the class a request is admitted,
/// queued, and (under the EDF ordering) dispatched by.
///
/// Lower rank is more urgent: [`Priority::High`] jumps queues and bypasses
/// the router's overload pacer; [`Priority::Low`] is the first traffic an
/// overloaded fleet sheds. The numeric [`Priority::rank`] doubles as the
/// index into every per-class counter array in the stack (and as the wire
/// byte), so the three views — enum, array slot, protocol byte — can never
/// disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Latency-critical traffic: dispatched first, never shed by the
    /// overload pacer (only by hard queue limits).
    High,
    /// The default class — what every legacy (class-less) submit carries.
    #[default]
    Normal,
    /// Best-effort traffic: first to be shed under overload.
    Low,
}

impl Priority {
    /// Number of priority classes (the length of every per-class array).
    pub const COUNT: usize = 3;

    /// All classes, most urgent first — `ALL[c].rank() == c`.
    pub const ALL: [Priority; Priority::COUNT] = [Priority::High, Priority::Normal, Priority::Low];

    /// The class's index into per-class arrays (0 = most urgent).
    pub const fn rank(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// The inverse of [`Priority::rank`]; `None` for out-of-range bytes
    /// (a decoder must not panic on corrupt input).
    pub const fn from_rank(rank: u8) -> Option<Priority> {
        match rank {
            0 => Some(Priority::High),
            1 => Some(Priority::Normal),
            2 => Some(Priority::Low),
            _ => None,
        }
    }
}

/// The QoS contract attached to one request: its [`Priority`] plus an
/// optional **relative** deadline (time from submission by which the
/// caller wants the logits).
///
/// The default class (`Normal`, no deadline) is what every class-less
/// submit path stamps, so pre-QoS callers keep their exact behavior.
/// Deadlines are relative on the wire (hosts share no clock); each shard
/// anchors them to its own arrival instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QosClass {
    /// Service priority (queue ordering + shed order).
    pub priority: Priority,
    /// Relative completion deadline, if the caller has one. Admission
    /// refuses requests whose deadline is already infeasible; admitted
    /// requests that miss it anyway are still completed (dropping them
    /// would shift stream coordinates) and counted as misses.
    pub deadline: Option<Duration>,
}

impl QosClass {
    /// A class with the given priority and no deadline.
    pub const fn new(priority: Priority) -> Self {
        QosClass {
            priority,
            deadline: None,
        }
    }

    /// Shorthand for [`Priority::High`] with no deadline.
    pub const fn high() -> Self {
        QosClass::new(Priority::High)
    }

    /// Shorthand for [`Priority::Low`] with no deadline.
    pub const fn low() -> Self {
        QosClass::new(Priority::Low)
    }

    /// Attaches a relative deadline.
    pub const fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// A contiguous block of global stream indices `[start, start + len)`,
/// handed by the router's lease allocator to one transport.
///
/// Leases are the unit of routing *and* of index allocation: the router
/// claims a lease once, then stamps requests from it without any shared
/// counter traffic — a remote shard never pays a round-trip per request.
/// Unused indices of a partially consumed lease are reclaimed on drain and
/// re-issued (lowest first) before any fresh indices, so the global stream
/// stays exactly `0, 1, 2, …` in submission order — the property the
/// fleet invariance rests on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexLease {
    /// First index of the block.
    pub start: u64,
    /// Number of indices in the block.
    pub len: u64,
}

impl IndexLease {
    /// The block `[start, start + len)`.
    pub const fn new(start: u64, len: u64) -> Self {
        IndexLease { start, len }
    }

    /// One past the last index of the block.
    pub const fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Whether the block contains `index`.
    pub const fn contains(&self, index: u64) -> bool {
        index >= self.start && index < self.end()
    }
}

/// One inference request on the wire: an image plus the global stream
/// coordinate it must be evaluated at.
///
/// The coordinate — not the receiving shard, not the batch position — keys
/// all evaluation randomness, which is what makes placement irrelevant to
/// results.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRequest {
    /// Global stream index of this request.
    pub global_index: u64,
    /// The request's QoS contract (priority + relative deadline). Carried
    /// so a remote shard can order its queue (EDF within priority) and
    /// count deadline misses exactly like a local one — it never affects
    /// *what* the request computes, only when it is dispatched.
    pub class: QosClass,
    /// The image to evaluate.
    pub image: Tensor,
}

/// A failure outcome carried in a [`ShardReply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyError {
    /// The shard was shut down before accepting the request.
    ShutDown,
    /// The request was accepted but dropped before execution.
    Canceled,
    /// The executor rejected the batch; the message is the rendered
    /// execution error.
    Exec(String),
}

/// One completed request on the wire, keyed by the same global index the
/// request carried.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReply {
    /// Global stream index of the request this reply answers.
    pub global_index: u64,
    /// ECN-style congestion mark: `true` when the shard's queue stood at
    /// or above its marking threshold when this reply was written. The
    /// router's pacer treats marked replies the way an AIMD sender treats
    /// ECN — slow ingress down *before* the queue hard-fills.
    pub marked: bool,
    /// The logits, or the failure that terminated the request.
    pub outcome: Result<Tensor, ReplyError>,
}

/// Point-in-time serving statistics in wire form (durations as
/// nanoseconds, so the encoding is exact and platform-free).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Requests accepted.
    pub submitted: u64,
    /// Requests that reached a terminal outcome.
    pub completed: u64,
    /// Requests refused.
    pub rejected: u64,
    /// Micro-batches dispatched.
    pub batches: u64,
    /// Images dispatched across all batches.
    pub dispatched: u64,
    /// Largest batch dispatched.
    pub max_batch_observed: u64,
    /// Admissions that found the queue at or above the ECN threshold.
    pub ecn_marks: u64,
    /// Drift events applied since the shard was last (re)programmed — its
    /// staleness in drift-log steps. Reset to zero by every reprogram
    /// (including background recalibration).
    pub drift_age: u64,
    /// Times the shard has been reprogrammed from its spec seed since it
    /// started serving (cumulative; never reset).
    pub reprograms: u64,
    /// Per-class admission/shed/deadline accounting, indexed by
    /// [`Priority::rank`].
    pub classes: [WireClassStats; Priority::COUNT],
    /// Recent queue waits, in nanoseconds.
    pub queue_waits_ns: Vec<u64>,
}

/// Per-priority-class serving statistics in wire form (see
/// [`WireStats::classes`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireClassStats {
    /// Requests of this class admitted.
    pub admitted: u64,
    /// Requests shed because the whole queue was full (drop-tail).
    pub shed_queue_full: u64,
    /// Requests shed because this class's in-flight budget was exhausted.
    pub shed_class_budget: u64,
    /// Requests shed by the congestion pacer (AIMD window exceeded).
    pub shed_overload: u64,
    /// Requests refused because their deadline was already infeasible at
    /// admission.
    pub infeasible: u64,
    /// Admitted requests that completed after their deadline.
    pub deadline_misses: u64,
    /// Recent submission→completion latencies of this class, nanoseconds.
    pub latencies_ns: Vec<u64>,
}

/// Every message of the shard protocol (see the module docs for the
/// client/server pairing).
// Frames are transient — decoded, dispatched, and dropped one at a time
// per connection — so the size skew from the stats snapshot variant
// never multiplies across a collection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: evaluate one image at its global coordinate.
    Request(ShardRequest),
    /// Server → client: one completed request.
    Reply(ShardReply),
    /// Client → server (advisory, no reply): subsequent requests draw
    /// their indices from this lease block.
    Lease(IndexLease),
    /// Client → server: finish every accepted request.
    Drain,
    /// Server → client: drain completed.
    DrainDone,
    /// Client → server: stop accepting, drain, stop the shard.
    Shutdown,
    /// Server → client: shutdown completed (all replies already sent).
    ShutdownDone,
    /// Client → server: apply conductance drift (`t_hours`).
    ApplyDrift(f64),
    /// Server → client: whether the replica models drift.
    DriftDone(bool),
    /// Client → server: rewrite the replica from its seed and rewind its
    /// stream.
    Reprogram,
    /// Server → client: reprogram outcome (`Err` carries the rendered
    /// execution error).
    ReprogramDone(Result<(), String>),
    /// Client → server: retune the shard's thread budget.
    SetParallelism(Parallelism),
    /// Server → client: thread budget updated.
    ParallelismSet,
    /// Client → server: request a statistics snapshot.
    StatsProbe,
    /// Server → client: the statistics snapshot.
    Stats(WireStats),
    /// Client → server: (re)establishes a protocol session. `resumed` is
    /// `true` when the client reconnects after a link failure and will
    /// follow up with [`Frame::ReplayLeases`] plus retransmitted
    /// requests (a go-back-N replay per lease).
    Hello {
        /// Whether this connection resumes an interrupted session.
        resumed: bool,
    },
    /// Server → client: the hello is accepted; the session may proceed.
    HelloAck,
    /// Client → server (advisory, no reply): the lease blocks whose
    /// unacknowledged requests are about to be retransmitted after a
    /// reconnect, so the host can account for the replayed coordinates.
    ReplayLeases(Vec<IndexLease>),
    /// Client → server: request the shard's [`ShardSpec`] (model id +
    /// device/seed recipe), so a router can place the transport into the
    /// right model group at fleet-assembly time.
    SpecProbe,
    /// Server → client: the shard's spec.
    Spec(ShardSpec),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_rank_is_a_bijection() {
        for (c, p) in Priority::ALL.iter().enumerate() {
            assert_eq!(p.rank(), c);
            assert_eq!(Priority::from_rank(c as u8), Some(*p));
        }
        assert_eq!(Priority::from_rank(3), None);
        assert_eq!(Priority::default(), Priority::Normal);
        let class = QosClass::high().with_deadline(Duration::from_millis(5));
        assert_eq!(class.priority, Priority::High);
        assert_eq!(class.deadline, Some(Duration::from_millis(5)));
        assert_eq!(QosClass::default().deadline, None);
        assert_eq!(QosClass::low().priority, Priority::Low);
    }

    #[test]
    fn lease_accessors() {
        let l = IndexLease::new(4, 3);
        assert_eq!(l.end(), 7);
        assert!(l.contains(4) && l.contains(6));
        assert!(!l.contains(3) && !l.contains(7));
        assert_eq!(IndexLease::new(9, 0).end(), 9);
        assert!(!IndexLease::new(9, 0).contains(9));
    }
}
