//! # aimc-wire — the shard wire protocol
//!
//! The serving fleet spreads replica shards across hosts by replacing the
//! in-process `ServeHandle` hop with a thin command interface — the same
//! shape the 64-core PCM chip and the heterogeneous IMC cluster papers use
//! for their compute fabrics: replicas behind a small set of serializable
//! commands. This crate defines that interface's *wire form*: the
//! [`Frame`] enum (requests, replies, and control frames), the
//! [`IndexLease`] blocks the router hands to transports, and a hand-rolled
//! little-endian byte codec ([`write_frame`] / [`read_frame`]) — no serde,
//! consistent with the workspace's shims-only dependency policy.
//!
//! The protocol is deliberately tiny. A client (the router's remote
//! transport) sends [`Frame::Request`] frames carrying `(global_index,
//! image)` and control frames; the server (a host wrapping its local
//! shard) answers with [`Frame::Reply`] frames keyed by the same global
//! index — replies correlate by stream coordinate, so they may interleave
//! freely with control traffic on one duplex byte stream. Control
//! commands are strictly request/reply (one outstanding at a time per
//! connection side), so no other correlation id is needed:
//!
//! | client frame | server frame | meaning |
//! |---|---|---|
//! | `Request { global_index, image }` | `Reply { global_index, outcome }` | evaluate one image at its global stream coordinate |
//! | `Lease { start, len }` | *(none)* | advisory: subsequent requests draw indices from this block |
//! | `Drain` | `DrainDone` | finish every accepted request |
//! | `Shutdown` | `ShutdownDone` | stop accepting, drain, stop the shard |
//! | `ApplyDrift(t_hours)` | `DriftDone(modeled)` | conductance drift on the replica |
//! | `Reprogram` | `ReprogramDone(result)` | rewrite the replica from its seed, rewind its stream |
//! | `SetParallelism(par)` | `ParallelismSet` | retune the shard's thread budget |
//! | `StatsProbe` | `Stats(stats)` | point-in-time serving statistics |
//!
//! Every frame is length-prefixed (`u32` LE) so a reader can never
//! misframe a stream; tensors travel as shape + raw `f32` LE bits, so the
//! fleet invariance survives the wire **bit for bit** — a remote shard's
//! logits are exactly the bytes the local executor produced.
//!
//! For tests (and single-process demos) the crate also ships
//! [`duplex`] — an in-memory, blocking, bidirectional byte pipe with the
//! same `Read`/`Write` surface as a `TcpStream` pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod pipe;

pub use codec::{decode_frame, encode_frame, read_frame, write_frame};
pub use pipe::{duplex, PipeEnd, PIPE_CAPACITY};

use aimc_dnn::Tensor;
use aimc_parallel::Parallelism;

/// A contiguous block of global stream indices `[start, start + len)`,
/// handed by the router's lease allocator to one transport.
///
/// Leases are the unit of routing *and* of index allocation: the router
/// claims a lease once, then stamps requests from it without any shared
/// counter traffic — a remote shard never pays a round-trip per request.
/// Unused indices of a partially consumed lease are reclaimed on drain and
/// re-issued (lowest first) before any fresh indices, so the global stream
/// stays exactly `0, 1, 2, …` in submission order — the property the
/// fleet invariance rests on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexLease {
    /// First index of the block.
    pub start: u64,
    /// Number of indices in the block.
    pub len: u64,
}

impl IndexLease {
    /// The block `[start, start + len)`.
    pub const fn new(start: u64, len: u64) -> Self {
        IndexLease { start, len }
    }

    /// One past the last index of the block.
    pub const fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Whether the block contains `index`.
    pub const fn contains(&self, index: u64) -> bool {
        index >= self.start && index < self.end()
    }
}

/// One inference request on the wire: an image plus the global stream
/// coordinate it must be evaluated at.
///
/// The coordinate — not the receiving shard, not the batch position — keys
/// all evaluation randomness, which is what makes placement irrelevant to
/// results.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRequest {
    /// Global stream index of this request.
    pub global_index: u64,
    /// The image to evaluate.
    pub image: Tensor,
}

/// A failure outcome carried in a [`ShardReply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyError {
    /// The shard was shut down before accepting the request.
    ShutDown,
    /// The request was accepted but dropped before execution.
    Canceled,
    /// The executor rejected the batch; the message is the rendered
    /// execution error.
    Exec(String),
}

/// One completed request on the wire, keyed by the same global index the
/// request carried.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReply {
    /// Global stream index of the request this reply answers.
    pub global_index: u64,
    /// The logits, or the failure that terminated the request.
    pub outcome: Result<Tensor, ReplyError>,
}

/// Point-in-time serving statistics in wire form (durations as
/// nanoseconds, so the encoding is exact and platform-free).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Requests accepted.
    pub submitted: u64,
    /// Requests that reached a terminal outcome.
    pub completed: u64,
    /// Requests refused.
    pub rejected: u64,
    /// Micro-batches dispatched.
    pub batches: u64,
    /// Images dispatched across all batches.
    pub dispatched: u64,
    /// Largest batch dispatched.
    pub max_batch_observed: u64,
    /// Recent queue waits, in nanoseconds.
    pub queue_waits_ns: Vec<u64>,
}

/// Every message of the shard protocol (see the module docs for the
/// client/server pairing).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: evaluate one image at its global coordinate.
    Request(ShardRequest),
    /// Server → client: one completed request.
    Reply(ShardReply),
    /// Client → server (advisory, no reply): subsequent requests draw
    /// their indices from this lease block.
    Lease(IndexLease),
    /// Client → server: finish every accepted request.
    Drain,
    /// Server → client: drain completed.
    DrainDone,
    /// Client → server: stop accepting, drain, stop the shard.
    Shutdown,
    /// Server → client: shutdown completed (all replies already sent).
    ShutdownDone,
    /// Client → server: apply conductance drift (`t_hours`).
    ApplyDrift(f64),
    /// Server → client: whether the replica models drift.
    DriftDone(bool),
    /// Client → server: rewrite the replica from its seed and rewind its
    /// stream.
    Reprogram,
    /// Server → client: reprogram outcome (`Err` carries the rendered
    /// execution error).
    ReprogramDone(Result<(), String>),
    /// Client → server: retune the shard's thread budget.
    SetParallelism(Parallelism),
    /// Server → client: thread budget updated.
    ParallelismSet,
    /// Client → server: request a statistics snapshot.
    StatsProbe,
    /// Server → client: the statistics snapshot.
    Stats(WireStats),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_accessors() {
        let l = IndexLease::new(4, 3);
        assert_eq!(l.end(), 7);
        assert!(l.contains(4) && l.contains(6));
        assert!(!l.contains(3) && !l.contains(7));
        assert_eq!(IndexLease::new(9, 0).end(), 9);
        assert!(!IndexLease::new(9, 0).contains(9));
    }
}
