//! An in-memory, blocking, bidirectional byte pipe.
//!
//! [`duplex`] returns two connected [`PipeEnd`]s with the same
//! `Read`/`Write` surface a `TcpStream` pair has, so the shard protocol
//! can be tested (and demoed) without sockets: bytes written to one end
//! become readable at the other, reads block until data or close, and a
//! closed end EOFs its peer after the buffered bytes are consumed.
//!
//! Each direction is **bounded** ([`PIPE_CAPACITY`] bytes, like a
//! socket's send buffer): a writer blocks once the peer stops reading, so
//! backpressure propagates through the pipe exactly as it would through
//! TCP — a fast submitter cannot buffer an unbounded backlog in memory.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex};

/// Bytes one direction of the pipe buffers before writers block — the
/// stand-in for a socket's send/receive buffers.
pub const PIPE_CAPACITY: usize = 1 << 20;

/// One direction of the pipe: a byte buffer plus its closed flag.
#[derive(Debug, Default)]
struct Half {
    inner: Mutex<HalfState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct HalfState {
    buf: VecDeque<u8>,
    closed: bool,
}

/// One end of an in-memory duplex pipe (see [`duplex`]).
///
/// Clone-able: clones share the same underlying channels, like a
/// `TcpStream::try_clone` pair — hand one clone to a reader thread and
/// keep another for writing. Ends do **not** close on drop (clones make
/// that ambiguous); call [`PipeEnd::close`] for a deterministic EOF.
#[derive(Debug, Clone)]
pub struct PipeEnd {
    /// The direction this end reads from.
    rx: Arc<Half>,
    /// The direction this end writes to.
    tx: Arc<Half>,
}

/// Creates a connected pair of pipe ends: bytes written to either end are
/// read from the other, in order.
pub fn duplex() -> (PipeEnd, PipeEnd) {
    let a = Arc::new(Half::default());
    let b = Arc::new(Half::default());
    (
        PipeEnd {
            rx: Arc::clone(&a),
            tx: Arc::clone(&b),
        },
        PipeEnd { rx: b, tx: a },
    )
}

impl PipeEnd {
    /// Closes both directions of the connection: the peer's reads EOF once
    /// buffered bytes are consumed, and writes from either side fail with
    /// `BrokenPipe`. Idempotent.
    pub fn close(&self) {
        for half in [&self.rx, &self.tx] {
            let mut st = half.inner.lock().unwrap();
            st.closed = true;
            half.cv.notify_all();
        }
    }
}

impl Read for PipeEnd {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut st = self.rx.inner.lock().unwrap();
        // Drain buffered bytes even after close — EOF only once empty.
        while st.buf.is_empty() {
            if st.closed {
                return Ok(0);
            }
            st = self.rx.cv.wait(st).unwrap();
        }
        let n = st.buf.len().min(buf.len());
        for slot in buf.iter_mut().take(n) {
            *slot = st.buf.pop_front().expect("n bounded by len");
        }
        // Freed capacity: wake writers blocked on the bound.
        self.rx.cv.notify_all();
        Ok(n)
    }
}

impl Write for PipeEnd {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut st = self.tx.inner.lock().unwrap();
        loop {
            if st.closed {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "pipe peer is closed",
                ));
            }
            let free = PIPE_CAPACITY.saturating_sub(st.buf.len());
            if free > 0 {
                let n = free.min(buf.len());
                st.buf.extend(&buf[..n]);
                self.tx.cv.notify_all();
                return Ok(n);
            }
            // Full: block until the reader frees capacity (or close).
            st = self.tx.cv.wait(st).unwrap();
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_frame, write_frame, Frame};

    #[test]
    fn bytes_cross_the_pipe_in_order() {
        let (mut a, mut b) = duplex();
        a.write_all(b"hello").unwrap();
        a.write_all(b" world").unwrap();
        let mut got = [0u8; 11];
        b.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello world");

        b.write_all(b"pong").unwrap();
        let mut got = [0u8; 4];
        a.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"pong");
    }

    #[test]
    fn close_eofs_after_buffered_bytes() {
        let (mut a, mut b) = duplex();
        a.write_all(b"tail").unwrap();
        a.close();
        let mut got = [0u8; 4];
        b.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"tail");
        assert_eq!(b.read(&mut got).unwrap(), 0, "EOF after the buffer");
        assert!(b.write_all(b"x").is_err(), "peer-closed write fails");
    }

    #[test]
    fn blocking_read_wakes_on_cross_thread_write() {
        let (mut a, mut b) = duplex();
        let t = std::thread::spawn(move || {
            let mut got = [0u8; 3];
            b.read_exact(&mut got).unwrap();
            got
        });
        a.write_all(b"abc").unwrap();
        assert_eq!(&t.join().unwrap(), b"abc");
    }

    /// The bound is real: a writer racing ahead of the reader blocks at
    /// capacity and resumes as the reader drains — socket-like
    /// backpressure, not unbounded buffering.
    #[test]
    fn writer_blocks_at_capacity_until_reader_drains() {
        let (mut a, mut b) = duplex();
        let writer = std::thread::spawn(move || {
            // Two capacities' worth: cannot fit without the reader.
            let chunk = vec![7u8; PIPE_CAPACITY / 4];
            for _ in 0..8 {
                a.write_all(&chunk).unwrap();
            }
            a.close();
        });
        let mut total = 0usize;
        let mut buf = vec![0u8; 64 * 1024];
        loop {
            let n = b.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            assert!(buf[..n].iter().all(|&x| x == 7));
            total += n;
        }
        assert_eq!(total, 2 * PIPE_CAPACITY);
        writer.join().unwrap();
    }

    #[test]
    fn frames_cross_the_pipe() {
        let (mut a, mut b) = duplex();
        write_frame(&mut a, &Frame::Drain).unwrap();
        write_frame(&mut a, &Frame::DrainDone).unwrap();
        assert_eq!(read_frame(&mut b).unwrap(), Frame::Drain);
        assert_eq!(read_frame(&mut b).unwrap(), Frame::DrainDone);
        a.close();
        assert_eq!(
            read_frame(&mut b).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }
}
