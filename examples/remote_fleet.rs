//! Distributed serving walkthrough: shards behind the wire protocol.
//!
//! Spins up **two `ShardServer`s on loopback TCP** — each hosting a
//! replica programmed from the same seed, exactly what two remote hosts
//! would run — then assembles a **mixed fleet** through
//! `Platform::serve_fleet_with`: one in-process shard (`local_shard`,
//! zero-copy) plus the two TCP transports, with lease-based index blocks
//! (lease length 4) so the router stamps requests without per-request
//! index traffic.
//!
//! The payoff is the fleet invariance, extended across placement: the
//! served logits are **bit-identical** to a solo `Session::infer_one`
//! stream — crossing a socket changes nothing, because results are keyed
//! to global stream coordinates, not to where (or how) a request was
//! evaluated.
//!
//! ```text
//! cargo run --release --example remote_fleet
//! ```

use aimc_platform::prelude::*;
use aimc_platform::serve::RoutePolicy;
use std::net::TcpListener;
use std::time::Duration;

fn random_images(n: usize, shape: Shape, seed: u64) -> Vec<Tensor> {
    // Deterministic pseudo-images (xorshift), no RNG dependency needed.
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / (1 << 24) as f32 * 2.0 - 1.0
    };
    (0..n)
        .map(|_| Tensor::from_vec(shape, (0..shape.numel()).map(|_| next()).collect()))
        .collect()
}

fn main() -> Result<(), Error> {
    let platform = Platform::builder()
        .graph(resnet18_cifar(10))
        .arch(ArchConfig::small(8, 8))
        .he_weights(42)
        .build()?;
    let backend = Backend::analog(7, XbarConfig::hermes_256());
    let policy = BatchPolicy::new(4, Duration::from_millis(2));
    let shape = Shape::new(3, 32, 32);

    // --- Host side: two shard servers on loopback ---------------------------
    // On a real deployment each of these runs on its own machine; the only
    // thing they share with the router is the seed (and the wire protocol).
    let mut server_threads = Vec::new();
    let mut addrs = Vec::new();
    for host in 0..2 {
        let server = platform.shard_server(policy, &backend)?;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        println!("shard server {host} listening on {addr}");
        addrs.push(addr);
        server_threads.push(std::thread::spawn(move || {
            server.serve_next(&listener).expect("serve connection");
        }));
    }

    // --- Router side: one local shard + two TCP transports ------------------
    let mut transports: Vec<Box<dyn ShardTransport>> = Vec::new();
    transports.push(Box::new(platform.local_shard(policy, &backend)?));
    for addr in &addrs {
        transports.push(Box::new(TcpTransport::connect(addr).expect("connect")));
    }
    let fleet = platform.serve_fleet_with(
        transports,
        FleetPolicy::new(RoutePolicy::RoundRobin).with_lease_len(4),
    )?;
    println!(
        "fleet: {} shards (1 local + 2 tcp), lease length {}",
        fleet.shard_count(),
        fleet.lease_len()
    );

    // --- Serve a stream and compare with solo inference ---------------------
    let stream = random_images(12, shape, 100);
    let pendings: Vec<Pending> = stream
        .iter()
        .map(|x| fleet.submit(x.clone()).expect("fleet open"))
        .collect();
    let logits: Vec<Tensor> = pendings
        .into_iter()
        .map(|p| p.wait().expect("request completes"))
        .collect();

    let mut solo = platform.session();
    let reference: Vec<Tensor> = stream
        .iter()
        .map(|x| solo.infer_one(x, backend.clone()))
        .collect::<Result<_, _>>()?;
    println!(
        "12 requests over 3 shards: bit-identical to solo inference: {}",
        logits == reference
    );
    assert_eq!(logits, reference, "placement leaked into the results");

    // Per-shard statistics — remote stats travel back over the wire.
    for (i, s) in fleet.stats().shards.iter().enumerate() {
        println!(
            "  shard {i}: {} requests, {} batches, mean batch {:.2}",
            s.submitted,
            s.batches,
            s.mean_batch()
        );
    }

    fleet.shutdown();
    for t in server_threads {
        t.join().expect("server settles");
    }
    println!("same seed, any transport mix => identical logits");
    Ok(())
}
