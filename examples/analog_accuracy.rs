//! Functional analog inference: runs a CIFAR-scale ResNet-18 through the
//! modeled PCM crossbars (programming noise, read noise, DAC/ADC
//! quantization) and measures classification agreement against the digital
//! f32 golden executor — the end-to-end numerical story the timing
//! simulator abstracts away.
//!
//! Both backends run through the same `Session`; switching `Backend`
//! re-programs the arrays, while consecutive images on one backend reuse
//! them.
//!
//! ```text
//! cargo run --release --example analog_accuracy
//! ```

use aimc_platform::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_image(shape: Shape, rng: &mut StdRng) -> Tensor {
    Tensor::from_vec(
        shape,
        (0..shape.numel())
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect(),
    )
}

fn main() -> Result<(), Error> {
    let graph = resnet18_cifar(10);
    let input_shape = graph.input_shape();
    let mut session = Platform::builder()
        .graph(graph)
        .arch(ArchConfig::small(8, 8))
        .he_weights(42)
        .build()?
        .session();

    let mut rng = StdRng::seed_from_u64(7);
    let n_images = 20;
    let images: Vec<Tensor> = (0..n_images)
        .map(|_| random_image(input_shape, &mut rng))
        .collect();
    let golden: Vec<usize> = session
        .infer(&images, Backend::Golden)?
        .iter()
        .map(|y| y.argmax())
        .collect();

    println!("analog vs digital classification agreement, {n_images} inputs\n");
    println!(
        "{:<34} {:>10} {:>12}",
        "device configuration", "agreement", "xbar tiles"
    );
    for (label, cfg) in [
        ("ideal (noiseless, 16-bit)", XbarConfig::ideal(256, 256)),
        ("HERMES-class (defaults)", XbarConfig::hermes_256()),
        ("pessimistic (3x noise)", {
            let mut c = XbarConfig::hermes_256();
            c.prog_noise_sigma *= 3.0;
            c.read_noise_sigma *= 3.0;
            c
        }),
    ] {
        let outputs = session.infer(&images, Backend::analog(1, cfg))?;
        let agree = outputs
            .iter()
            .zip(&golden)
            .filter(|(y, &g)| y.argmax() == g)
            .count();
        println!(
            "{:<34} {:>7}/{:<2} {:>12}",
            label,
            agree,
            n_images,
            session.tile_count()
        );
    }
    println!("\nexpected shape: ideal arrays agree fully; realistic noise loses a few");
    println!("borderline inputs; heavy noise degrades further (cf. the paper's");
    println!("references on noise-aware training).");
    Ok(())
}
