//! The paper's flagship experiment: ResNet-18 on 256×256 inputs, batch 16,
//! on the 512-cluster platform — the full Sec. VI evaluation in one run.
//!
//! ```text
//! cargo run --release --example resnet18_batch
//! ```

use aimc_platform::prelude::*;

fn main() -> Result<(), Error> {
    let graph = resnet18(256, 256, 1000);
    let arch = ArchConfig::paper();
    println!(
        "ResNet-18 @256x256: {:.2} GMAC/image, {:.1} M parameters",
        graph.total_macs() as f64 / 1e9,
        graph.total_params() as f64 / 1e6
    );

    for strategy in [
        MappingStrategy::Naive,
        MappingStrategy::Balanced,
        MappingStrategy::OnChipResiduals,
    ] {
        // One compiled platform per strategy; the session runs + analyses.
        let platform = Platform::builder()
            .graph(graph.clone())
            .arch(arch.clone())
            .strategy(strategy)
            .build()?;
        let mut session = platform.session();
        let report = session.run(RunSpec::batch(16))?;
        println!(
            "\n=== {} ===\n  clusters {}, makespan {}, {:.1} TOPS, {:.0} img/s",
            platform.mapping().strategy.label(),
            platform.mapping().n_clusters_used,
            report.makespan,
            report.tops(),
            report.images_per_s()
        );
        if strategy == MappingStrategy::OnChipResiduals {
            let headline = session.headline(&EnergyModel::default(), &AreaModel::default())?;
            println!("\n{}", headline.render());
            let waterfall = session.waterfall()?;
            println!("{}", waterfall.render());
        }
    }
    Ok(())
}
