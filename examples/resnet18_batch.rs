//! The paper's flagship experiment: ResNet-18 on 256×256 inputs, batch 16,
//! on the 512-cluster platform — the full Sec. VI evaluation in one run.
//!
//! ```text
//! cargo run --release --example resnet18_batch
//! ```

use aimc_platform::prelude::*;

fn main() {
    let graph = resnet18(256, 256, 1000);
    let arch = ArchConfig::paper();
    println!(
        "ResNet-18 @256x256: {:.2} GMAC/image, {:.1} M parameters",
        graph.total_macs() as f64 / 1e9,
        graph.total_params() as f64 / 1e6
    );

    for strategy in [
        MappingStrategy::Naive,
        MappingStrategy::Balanced,
        MappingStrategy::OnChipResiduals,
    ] {
        let mapping = map_network(&graph, &arch, strategy).expect("mapping fits");
        let report = simulate(&graph, &mapping, &arch, 16);
        println!(
            "\n=== {} ===\n  clusters {}, makespan {}, {:.1} TOPS, {:.0} img/s",
            mapping.strategy.label(),
            mapping.n_clusters_used,
            report.makespan,
            report.tops(),
            report.images_per_s()
        );
        if strategy == MappingStrategy::OnChipResiduals {
            let headline = Headline::compute(
                &mapping,
                &arch,
                &report,
                &EnergyModel::default(),
                &AreaModel::default(),
            );
            println!("\n{}", headline.render());
            let waterfall = Waterfall::compute(&graph, &mapping, &arch, &report);
            println!("{}", waterfall.render());
        }
    }
}
