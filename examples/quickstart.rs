//! Quickstart: build a small CNN, compile it onto a 32-cluster AIMC
//! platform with the `Platform` builder, and drive a pipelined batch
//! through the timing simulator with a `Session`.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aimc_platform::prelude::*;

fn main() -> Result<(), Error> {
    // 1. Describe a workload as a DAG (a little 3-layer CNN with a residual).
    let mut b = GraphBuilder::new(Shape::new(3, 32, 32));
    let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 16, 1));
    let c1 = b.conv("c1", Some(c0), ConvCfg::k3(16, 16, 1));
    let r = b.residual("res", c1, c0, None);
    let gap = b.global_avgpool("gap", r);
    b.linear("fc", gap, 10);
    let graph = b.finish();
    println!("workload:\n{graph}");

    // 2. Describe a platform: 32 clusters (4 per L1 quadrant, 8 quadrants),
    //    each with 16 RISC-V cores + one 256x256 PCM crossbar.
    let arch = ArchConfig::small(4, 8);
    println!(
        "platform: {} clusters, ideal {:.1} TOPS",
        arch.n_clusters(),
        arch.ideal_tops()
    );

    // 3. Compile: multi-cluster splits, reduction trees, tiling, replication
    //    all happen once, inside build().
    let platform = Platform::builder()
        .graph(graph)
        .arch(arch)
        .strategy(MappingStrategy::OnChipResiduals)
        .build()?;
    println!("\nmapping:\n{}", platform.mapping().summary());

    // 4. Simulate a pipelined batch of 8 images.
    let mut session = platform.session();
    let report = session.run(RunSpec::batch(8))?;
    println!(
        "batch 8: makespan {}, {:.2} TOPS nominal, {:.0} images/s steady",
        report.makespan,
        report.tops(),
        report.images_per_s()
    );

    // 5. Inspect where time goes on each cluster.
    println!("\nper-cluster breakdown:");
    for c in report.clusters.iter().take(8) {
        println!(
            "  cluster {:>2} ({:<8}): compute {:>10}, comm {:>10}, sync {:>10}, sleep {:>10}",
            c.cluster, c.stage_name, c.compute, c.communication, c.synchronization, c.sleep
        );
    }
    Ok(())
}
