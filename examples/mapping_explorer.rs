//! Architecture exploration: the "guidelines for next-generation many-core
//! architectures" angle of the paper. Sweeps the cluster count and the
//! crossbar geometry, reporting mapping feasibility, utilization and
//! throughput for ResNet-18.
//!
//! Each candidate architecture is one `Platform::builder()` call —
//! infeasible configurations surface as `Error::Map` values from `build()`
//! instead of panics.
//!
//! ```text
//! cargo run --release --example mapping_explorer
//! ```

use aimc_platform::prelude::*;

fn run_point(
    graph: &Graph,
    arch: ArchConfig,
    strategy: MappingStrategy,
    batch: usize,
) -> Result<(usize, f64, f64), Error> {
    let platform = Platform::builder()
        .graph(graph.clone())
        .arch(arch)
        .strategy(strategy)
        .build()?;
    let used = platform.mapping().n_clusters_used;
    let mut session = platform.session();
    let r = session.run(RunSpec::batch(batch))?;
    Ok((used, r.tops(), r.images_per_s()))
}

fn main() -> Result<(), Error> {
    let graph = resnet18(256, 256, 1000);

    println!("== platform size sweep (256x256 arrays, batch 8) ==\n");
    println!(
        "{:<10} {:>9} {:>10} {:>10} {:>12}",
        "clusters", "used", "TOPS", "img/s", "ideal TOPS"
    );
    for (per_l1, l1s, wrappers) in [(4, 4, 4), (4, 4, 8), (4, 4, 16)] {
        let mut arch = ArchConfig::paper();
        arch.noc.quadrant_factors = vec![per_l1, l1s, 4, wrappers];
        arch.noc.link_width_bytes = vec![64; 4];
        arch.noc.router_latency_cycles = vec![4; 4];
        let n = arch.n_clusters();
        let ideal = arch.ideal_tops();
        match run_point(&graph, arch, MappingStrategy::OnChipResiduals, 8) {
            Ok((used, tops, imgs)) => {
                println!("{n:<10} {used:>9} {tops:>10.1} {imgs:>10.0} {ideal:>12.1}")
            }
            Err(e) => println!("{n:<10} does not fit: {e}"),
        }
    }

    println!("\n== interconnect latency sweep (512 clusters, batch 8) ==\n");
    println!(
        "{:<22} {:>10} {:>10}",
        "router latency [cyc]", "TOPS", "img/s"
    );
    for lat in [1u64, 4, 16, 64] {
        let mut arch = ArchConfig::paper();
        arch.noc.router_latency_cycles = vec![lat; 4];
        let (_, tops, imgs) = run_point(&graph, arch, MappingStrategy::OnChipResiduals, 8)?;
        println!("{lat:<22} {tops:>10.1} {imgs:>10.0}");
    }

    println!("\n== HBM latency sweep with residuals forced to HBM (batch 8) ==\n");
    println!("{:<22} {:>10} {:>10}", "HBM latency [cyc]", "TOPS", "img/s");
    for lat in [50u64, 100, 200, 400] {
        let mut arch = ArchConfig::paper();
        arch.noc.hbm.latency_cycles = lat;
        let (_, tops, imgs) = run_point(&graph, arch, MappingStrategy::Balanced, 8)?;
        println!("{lat:<22} {tops:>10.1} {imgs:>10.0}");
    }
    Ok(())
}
