//! Architecture exploration: the "guidelines for next-generation many-core
//! architectures" angle of the paper. Sweeps the cluster count and the
//! crossbar geometry, reporting mapping feasibility, utilization and
//! throughput for ResNet-18.
//!
//! ```text
//! cargo run --release --example mapping_explorer
//! ```

use aimc_platform::core::{map_network, ArchConfig, MappingStrategy};
use aimc_platform::prelude::*;

fn main() {
    let graph = resnet18(256, 256, 1000);

    println!("== platform size sweep (256x256 arrays, batch 8) ==\n");
    println!(
        "{:<10} {:>9} {:>10} {:>10} {:>12}",
        "clusters", "used", "TOPS", "img/s", "ideal TOPS"
    );
    for (per_l1, l1s, wrappers) in [(4, 4, 4), (4, 4, 8), (4, 4, 16)] {
        let mut arch = ArchConfig::paper();
        arch.noc.quadrant_factors = vec![per_l1, l1s, 4, wrappers];
        arch.noc.link_width_bytes = vec![64; 4];
        arch.noc.router_latency_cycles = vec![4; 4];
        let n = arch.n_clusters();
        match map_network(&graph, &arch, MappingStrategy::OnChipResiduals) {
            Ok(m) => {
                let r = simulate(&graph, &m, &arch, 8);
                println!(
                    "{:<10} {:>9} {:>10.1} {:>10.0} {:>12.1}",
                    n,
                    m.n_clusters_used,
                    r.tops(),
                    r.images_per_s(),
                    arch.ideal_tops()
                );
            }
            Err(e) => println!("{:<10} does not fit: {e}", n),
        }
    }

    println!("\n== interconnect latency sweep (512 clusters, batch 8) ==\n");
    println!("{:<22} {:>10} {:>10}", "router latency [cyc]", "TOPS", "img/s");
    for lat in [1u64, 4, 16, 64] {
        let mut arch = ArchConfig::paper();
        arch.noc.router_latency_cycles = vec![lat; 4];
        let m = map_network(&graph, &arch, MappingStrategy::OnChipResiduals).unwrap();
        let r = simulate(&graph, &m, &arch, 8);
        println!("{:<22} {:>10.1} {:>10.0}", lat, r.tops(), r.images_per_s());
    }

    println!("\n== HBM latency sweep with residuals forced to HBM (batch 8) ==\n");
    println!("{:<22} {:>10} {:>10}", "HBM latency [cyc]", "TOPS", "img/s");
    for lat in [50u64, 100, 200, 400] {
        let mut arch = ArchConfig::paper();
        arch.noc.hbm.latency_cycles = lat;
        let m = map_network(&graph, &arch, MappingStrategy::Balanced).unwrap();
        let r = simulate(&graph, &m, &arch, 8);
        println!("{:<22} {:>10.1} {:>10.0}", lat, r.tops(), r.images_per_s());
    }
}
