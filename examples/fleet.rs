//! The sharded serving fleet in action: N replica sessions behind a
//! router that owns the global request stream.
//!
//! Part 1 serves a request stream through a 3-shard fleet and prints the
//! per-shard and aggregated statistics. Part 2 demonstrates the *fleet
//! invariance* guarantee: the same deterministic request stream served at
//! different shard counts and routing policies produces logits
//! bit-identical to solo `Session::infer_one` calls — adding shards never
//! changes a single logit.
//!
//! ```text
//! cargo run --release --example fleet
//! ```

use aimc_platform::prelude::*;
use aimc_platform::serve::RoutePolicy;
use std::time::{Duration, Instant};

fn random_images(n: usize, shape: Shape, seed: u64) -> Vec<Tensor> {
    // Deterministic pseudo-images (xorshift), no RNG dependency needed.
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / (1 << 24) as f32 * 2.0 - 1.0
    };
    (0..n)
        .map(|_| Tensor::from_vec(shape, (0..shape.numel()).map(|_| next()).collect()))
        .collect()
}

fn main() -> Result<(), Error> {
    let platform = Platform::builder()
        .graph(resnet18_cifar(10))
        .arch(ArchConfig::small(8, 8))
        .he_weights(42)
        .build()?;
    let backend = Backend::analog(7, XbarConfig::hermes_256());
    let shape = Shape::new(3, 32, 32);

    // --- Part 1: one stream over three replica shards ----------------------
    let fleet = platform.serve_fleet(
        3,
        BatchPolicy::new(4, Duration::from_millis(2)),
        RoutePolicy::RoundRobin,
        &backend,
    )?;
    let stream = random_images(12, shape, 100);
    let t0 = Instant::now();
    let pendings: Vec<Pending> = stream
        .iter()
        .map(|x| fleet.submit(x.clone()).expect("fleet open"))
        .collect();
    let done = pendings
        .into_iter()
        .map(|p| p.wait())
        .filter(Result::is_ok)
        .count();
    fleet.shutdown();
    let stats = fleet.stats();
    println!(
        "served {done} requests across {} shards in {:.2}s ({} routed)",
        fleet.shard_count(),
        t0.elapsed().as_secs_f64(),
        fleet.images_routed(),
    );
    for (i, s) in stats.shards.iter().enumerate() {
        println!(
            "  shard {i}: {} requests, {} batches, mean batch {:.2}",
            s.submitted,
            s.batches,
            s.mean_batch()
        );
    }
    let agg = stats.aggregate();
    println!(
        "  fleet:   {} requests, {} batches, queue wait p95 {:?}",
        agg.submitted,
        agg.batches,
        agg.queue_wait_percentile(0.95).unwrap_or_default(),
    );

    // --- Part 2: fleet invariance -------------------------------------------
    let stream = random_images(6, shape, 7);
    let mut solo = platform.session();
    let reference: Vec<Tensor> = stream
        .iter()
        .map(|x| solo.infer_one(x, backend.clone()))
        .collect::<Result<_, _>>()?;

    for (n_shards, route) in [
        (1usize, RoutePolicy::RoundRobin),
        (2, RoutePolicy::LeastQueueDepth),
        (4, RoutePolicy::RoundRobin),
    ] {
        let fleet = platform.serve_fleet(
            n_shards,
            BatchPolicy::new(2, Duration::from_millis(1)),
            route,
            &backend,
        )?;
        let pendings: Vec<Pending> = stream
            .iter()
            .map(|x| fleet.submit(x.clone()).expect("fleet open"))
            .collect();
        let logits: Vec<Tensor> = pendings
            .into_iter()
            .map(|p| p.wait().expect("request completes"))
            .collect();
        fleet.shutdown();
        println!(
            "{n_shards} shard(s), {route:?}: bit-identical to solo: {}",
            logits == reference
        );
        assert_eq!(logits, reference, "fleet invariance violated");
    }
    println!("same seed, any shard count, any routing => identical logits");
    Ok(())
}
