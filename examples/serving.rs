//! The serving layer in action: an async micro-batch scheduler in front of
//! a programmed analog session.
//!
//! Part 1 drives the scheduler from two concurrent submitter threads
//! (clone-able `ServeHandle`) and prints the coalescing statistics.
//! Part 2 demonstrates the *batch-composition invariance* guarantee: the
//! same deterministic request stream served under different `max_batch`
//! policies produces logits bit-identical to solo `Session::infer_one`
//! calls.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use aimc_platform::prelude::*;
use std::time::{Duration, Instant};

fn random_images(n: usize, shape: Shape, seed: u64) -> Vec<Tensor> {
    // Deterministic pseudo-images (xorshift), no RNG dependency needed.
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / (1 << 24) as f32 * 2.0 - 1.0
    };
    (0..n)
        .map(|_| Tensor::from_vec(shape, (0..shape.numel()).map(|_| next()).collect()))
        .collect()
}

fn main() -> Result<(), Error> {
    let platform = Platform::builder()
        .graph(resnet18_cifar(10))
        .arch(ArchConfig::small(8, 8))
        .he_weights(42)
        .build()?;
    let backend = Backend::analog(7, XbarConfig::hermes_256());
    let shape = Shape::new(3, 32, 32);

    // --- Part 1: concurrent submitters through one scheduler ---------------
    let mut session = platform.session();
    session.program(&backend)?;
    let handle = session.serve(BatchPolicy::new(4, Duration::from_millis(2)))?;
    let t0 = Instant::now();
    let submitters: Vec<std::thread::JoinHandle<usize>> = (0..2)
        .map(|who| {
            let h = handle.clone();
            let images = random_images(6, shape, 100 + who);
            std::thread::spawn(move || {
                let pendings: Vec<Pending> = images
                    .iter()
                    .map(|x| h.submit(x.clone()).expect("handle open"))
                    .collect();
                pendings
                    .into_iter()
                    .map(|p| p.wait())
                    .filter(Result::is_ok)
                    .count()
            })
        })
        .collect();
    let done: usize = submitters.into_iter().map(|t| t.join().unwrap()).sum();
    handle.shutdown();
    let stats = handle.stats();
    println!(
        "served {done} requests from 2 threads in {:.2}s: {} batches, mean batch {:.2}, \
         queue wait p50 {:?} / p95 {:?}",
        t0.elapsed().as_secs_f64(),
        stats.batches,
        stats.mean_batch(),
        stats.queue_wait_percentile(0.50).unwrap_or_default(),
        stats.queue_wait_percentile(0.95).unwrap_or_default(),
    );

    // --- Part 2: batch-composition invariance -------------------------------
    let stream = random_images(6, shape, 7);
    let mut solo = platform.session();
    let reference: Vec<Tensor> = stream
        .iter()
        .map(|x| solo.infer_one(x, backend.clone()))
        .collect::<Result<_, _>>()?;

    for max_batch in [1usize, 3, 16] {
        let mut s = platform.session();
        s.program(&backend)?;
        let h = s.serve(BatchPolicy::new(max_batch, Duration::from_millis(1)))?;
        let pendings: Vec<Pending> = stream
            .iter()
            .map(|x| h.submit(x.clone()).expect("handle open"))
            .collect();
        let logits: Vec<Tensor> = pendings
            .into_iter()
            .map(|p| p.wait().expect("request completes"))
            .collect();
        h.shutdown();
        println!(
            "max_batch {max_batch:>2}: {} batches, bit-identical to solo: {}",
            h.stats().batches,
            logits == reference
        );
        assert_eq!(logits, reference, "batch-composition invariance violated");
    }
    println!("same seed, any chopping of the stream => identical logits");
    Ok(())
}
