//! The transport-agnostic fleet's hard invariant, end-to-end through
//! `Platform::serve_fleet_with`: **fleet invariance across placement** —
//! for a fixed seed, the logits of every request are bit-identical to a
//! solo `Session::infer_one` stream of the same images, for ANY mix of
//! local and remote (wire-protocol) transports, ANY lease length, and ANY
//! routing policy, on both functional backends, including across a
//! fleet-wide drained reprogram.
//!
//! Remote shards run real `ShardServer`s speaking the `aimc-wire`
//! protocol over in-memory duplex pipes — byte-for-byte the TCP protocol,
//! minus the socket (the loopback-TCP path is exercised by the
//! `remote_scaling` leg of the `shard_scaling` bench and by
//! `examples/remote_fleet.rs`).

use aimc_platform::prelude::*;
use aimc_platform::wire::duplex;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::thread::JoinHandle;
use std::time::Duration;

fn small_cnn() -> Graph {
    let mut b = GraphBuilder::new(Shape::new(3, 8, 8));
    let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 8, 1));
    let c1 = b.conv("c1", Some(c0), ConvCfg::k3(8, 8, 1));
    let r = b.residual("r", c1, c0, None);
    let p = b.global_avgpool("gap", r);
    b.linear("fc", p, 4);
    b.finish()
}

fn random_images(n: usize, seed: u64) -> Vec<Tensor> {
    let shape = Shape::new(3, 8, 8);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Tensor::from_vec(
                shape,
                (0..shape.numel())
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect(),
            )
        })
        .collect()
}

fn platform() -> Platform {
    Platform::builder()
        .graph(small_cnn())
        .arch(ArchConfig::small(8, 8))
        .he_weights(42)
        .build()
        .unwrap()
}

fn noisy_backend() -> Backend {
    // Real noise levels and small arrays: every MVM consumes randomness
    // and every layer splits across tiles — the hardest case for the
    // invariance.
    Backend::analog(7, XbarConfig::hermes_256().with_size(32, 4))
}

/// Solo reference: one `infer_one` per image, in stream order, on a fresh
/// single session.
fn solo_logits(backend: &Backend, images: &[Tensor]) -> Vec<Tensor> {
    let mut s = platform().session();
    images
        .iter()
        .map(|x| s.infer_one(x, backend.clone()).unwrap())
        .collect()
}

/// Which transports back the fleet's shards.
#[derive(Debug, Clone, Copy)]
enum Mix {
    AllLocal,
    AllTcp,
    /// Alternating local / wire-protocol shards.
    Mixed,
}

/// A fleet plus the server threads backing its remote shards; shut the
/// fleet down, then `join` to settle the servers.
struct TestFleet {
    fleet: FleetHandle,
    servers: Vec<JoinHandle<()>>,
}

impl TestFleet {
    fn shutdown(self) {
        self.fleet.shutdown();
        for s in self.servers {
            s.join().expect("shard server settles after shutdown");
        }
    }
}

/// Assembles an `n_shards` fleet under `mix`: local shards go straight
/// into the router; remote shards run a `ShardServer` (wrapping an
/// identically programmed replica) on its own thread behind a duplex pipe,
/// reached through `TcpTransport::over`.
fn build_fleet(
    platform: &Platform,
    n_shards: usize,
    mix: Mix,
    policy: FleetPolicy,
    batch: BatchPolicy,
    backend: &Backend,
) -> TestFleet {
    let mut transports: Vec<Box<dyn ShardTransport>> = Vec::with_capacity(n_shards);
    let mut servers = Vec::new();
    for shard_id in 0..n_shards {
        let remote = match mix {
            Mix::AllLocal => false,
            Mix::AllTcp => true,
            Mix::Mixed => shard_id % 2 == 1,
        };
        if remote {
            let server = platform.shard_server(batch, backend).unwrap();
            let (client_end, server_end) = duplex();
            servers.push(std::thread::spawn({
                let reader = server_end.clone();
                let writer = server_end.clone();
                move || {
                    server
                        .serve_stream(reader, writer)
                        .expect("shard server protocol loop");
                    // Close the pipe so the client's reader thread exits.
                    server_end.close();
                }
            }));
            let reader = client_end.clone();
            transports.push(Box::new(TcpTransport::over(reader, client_end)));
        } else {
            transports.push(Box::new(platform.local_shard(batch, backend).unwrap()));
        }
    }
    TestFleet {
        fleet: platform.serve_fleet_with(transports, policy).unwrap(),
        servers,
    }
}

/// Fleet stream: submit every image in order through the router and wait
/// for all completions.
fn fleet_logits(fleet: &FleetHandle, images: &[Tensor]) -> Vec<Tensor> {
    let pendings: Vec<Pending> = images
        .iter()
        .map(|x| fleet.submit(x.clone()).unwrap())
        .collect();
    pendings.into_iter().map(|p| p.wait().unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random request streams × transport mix {all-local, all-tcp, mixed}
    /// × lease length {1, 4, 64} × routing policy × shard count × backend:
    /// the fleet's logits are bit-identical to the solo stream, per image.
    #[test]
    fn any_transport_mix_is_bit_identical_to_solo(
        seed in 0u64..1_000,
        n in 1usize..8,
        shard_idx in 0usize..3,
        mix_idx in 0usize..3,
        lease_idx in 0usize..3,
        route_idx in 0usize..2,
    ) {
        let n_shards = [1usize, 2, 3][shard_idx];
        let mix = [Mix::AllLocal, Mix::AllTcp, Mix::Mixed][mix_idx];
        let lease = [1u64, 4, 64][lease_idx];
        let route = [RoutePolicy::RoundRobin, RoutePolicy::LeastQueueDepth][route_idx];
        let policy = FleetPolicy::new(route).with_lease_len(lease);
        let batch = BatchPolicy::new(2, Duration::from_millis(1));
        let images = random_images(n, seed);
        let platform = platform();
        for backend in [Backend::Golden, noisy_backend()] {
            let want = solo_logits(&backend, &images);
            let tf = build_fleet(&platform, n_shards, mix, policy, batch, &backend);
            let got = fleet_logits(&tf.fleet, &images);
            tf.shutdown();
            prop_assert_eq!(
                &want, &got,
                "backend {:?}, {} shard(s), {:?}, lease {}, {:?} diverged",
                backend, n_shards, mix, lease, route
            );
        }
    }
}

/// The invariance survives fleet-wide drift and reprogramming on a
/// **mixed local + remote** fleet: every replica — wherever it lives —
/// transitions at the same drained stream position, the reprogram rewinds
/// the lease allocator to zero (with a partially consumed lease
/// outstanding), and the replayed stream matches the solo session's.
#[test]
fn mixed_fleet_across_drift_and_reprogram_matches_solo() {
    let backend = noisy_backend();
    let images = random_images(6, 11);
    let (a, b) = images.split_at(3);

    // Solo reference through the same transition points.
    let mut solo = platform().session();
    let mut want: Vec<Tensor> = a
        .iter()
        .map(|x| solo.infer_one(x, backend.clone()).unwrap())
        .collect();
    solo.apply_drift(1000.0).unwrap();
    want.extend(
        b.iter()
            .map(|x| solo.infer_one(x, backend.clone()).unwrap()),
    );
    solo.reprogram(&backend).unwrap();
    want.extend(
        a.iter()
            .map(|x| solo.infer_one(x, backend.clone()).unwrap()),
    );

    // Mixed fleet: local, remote, local — lease 4, so the reprogram runs
    // with a partially consumed lease outstanding.
    let platform = platform();
    let tf = build_fleet(
        &platform,
        3,
        Mix::Mixed,
        FleetPolicy::new(RoutePolicy::RoundRobin).with_lease_len(4),
        BatchPolicy::new(2, Duration::from_millis(1)),
        &backend,
    );
    let fleet = &tf.fleet;
    let mut got = fleet_logits(fleet, a);
    assert!(fleet.apply_drift(1000.0), "analog replicas model drift");
    got.extend(fleet_logits(fleet, b));
    fleet.reprogram().unwrap();
    assert_eq!(fleet.images_routed(), 0, "reprogram rewinds the stream");
    got.extend(fleet_logits(fleet, a));
    tf.shutdown();

    assert_eq!(want, got, "transitioned mixed fleet diverged from solo");
    // Reprogramming rewinds the stream: image a[0] re-served after
    // reprogram replays coordinate 0 on freshly written replicas.
    assert_eq!(want[0], want[6], "reprogram did not rewind the stream");
}

/// Lease length 1 degenerates to the PR 4 per-request router **exactly**:
/// the same stream through `serve_fleet` (per-request counter semantics)
/// and through an all-local lease-1 `serve_fleet_with` produces identical
/// logits and identical per-shard request counts under round-robin.
#[test]
fn lease_one_degenerates_to_per_request_routing() {
    let backend = noisy_backend();
    let images = random_images(6, 17);
    let platform = platform();
    let batch = BatchPolicy::new(2, Duration::from_millis(1));

    let reference = platform
        .serve_fleet(3, batch, RoutePolicy::RoundRobin, &backend)
        .unwrap();
    let want = fleet_logits(&reference, &images);
    let ref_counts: Vec<u64> = reference
        .stats()
        .shards
        .iter()
        .map(|s| s.submitted)
        .collect();
    reference.shutdown();

    let tf = build_fleet(
        &platform,
        3,
        Mix::AllLocal,
        FleetPolicy::new(RoutePolicy::RoundRobin).with_lease_len(1),
        batch,
        &backend,
    );
    let got = fleet_logits(&tf.fleet, &images);
    let got_counts: Vec<u64> = tf
        .fleet
        .stats()
        .shards
        .iter()
        .map(|s| s.submitted)
        .collect();
    tf.shutdown();

    assert_eq!(want, got, "lease 1 changed a logit");
    assert_eq!(ref_counts, got_counts, "lease 1 changed the routing");
}

/// Drained partial leases reclaim across phases: a lease longer than each
/// burst leaves unused indices at every drain, which must be re-issued so
/// the stream stays contiguous — and therefore bit-identical to solo.
#[test]
fn drain_reclaim_keeps_the_stream_solo_identical() {
    let backend = noisy_backend();
    let images = random_images(7, 23);
    let want = solo_logits(&backend, &images);

    let platform = platform();
    let tf = build_fleet(
        &platform,
        2,
        Mix::AllTcp,
        FleetPolicy::new(RoutePolicy::RoundRobin).with_lease_len(64),
        BatchPolicy::new(3, Duration::from_millis(1)),
        &backend,
    );
    let mut got = Vec::new();
    // Bursts of 2/2/3 with a drain between each: every drain reclaims the
    // 64-lease's tail and the next burst re-claims from exactly there.
    for chunk in [&images[..2], &images[2..4], &images[4..]] {
        got.extend(fleet_logits(&tf.fleet, chunk));
        tf.fleet.drain();
    }
    assert_eq!(tf.fleet.images_routed(), 7);
    tf.shutdown();
    assert_eq!(want, got, "drain/reclaim changed the stream");
}

/// `serve_fleet_with(vec![], ..)` is the typed `NoShards` error, same as
/// the clamped `serve_fleet` path is never empty — no panic.
#[test]
fn empty_transport_vector_is_a_typed_error() {
    let platform = platform();
    match platform.serve_fleet_with(Vec::new(), FleetPolicy::default()) {
        Err(Error::NoShards) => {}
        other => panic!("expected Error::NoShards, got {other:?}"),
    }
    // And the error is loud about the remedy.
    assert!(Error::NoShards.to_string().contains("at least one"));
}

/// Remote statistics flow back over the wire: a mixed fleet's aggregated
/// stats count every request exactly once, local or remote.
#[test]
fn mixed_fleet_stats_aggregate_over_the_wire() {
    let backend = Backend::Golden;
    let images = random_images(8, 29);
    let platform = platform();
    let tf = build_fleet(
        &platform,
        2,
        Mix::Mixed,
        FleetPolicy::new(RoutePolicy::RoundRobin).with_lease_len(2),
        BatchPolicy::new(2, Duration::from_millis(1)),
        &backend,
    );
    let got = fleet_logits(&tf.fleet, &images);
    assert_eq!(got, solo_logits(&backend, &images));
    tf.fleet.drain();
    let agg = tf.fleet.stats().aggregate();
    assert_eq!(agg.submitted, 8);
    assert_eq!(agg.completed, 8);
    assert_eq!(agg.dispatched, 8);
    assert_eq!(
        agg.queue_waits.len(),
        8,
        "remote queue-wait samples crossed the wire"
    );
    tf.shutdown();
}
