//! Property-based integration tests: randomly generated CNNs must map and
//! simulate while preserving the pipeline's conservation invariants.

use aimc_platform::prelude::*;
use proptest::prelude::*;

/// Builds a random plain CNN from a compact genome.
fn build_graph(widths: &[usize], with_residual: bool, classes: usize) -> Graph {
    let mut b = GraphBuilder::new(Shape::new(3, 16, 16));
    let mut prev = b.conv("c0", b.input(), ConvCfg::k3(3, widths[0], 1));
    let mut prev_width = widths[0];
    for (i, &w) in widths.iter().enumerate().skip(1) {
        let stride = if i % 2 == 0 { 2 } else { 1 };
        let id = b.conv(
            &format!("c{i}"),
            Some(prev),
            ConvCfg::k3(prev_width, w, stride),
        );
        prev = if with_residual && stride == 1 && w == prev_width {
            b.residual(&format!("r{i}"), id, prev, None)
        } else {
            id
        };
        prev_width = w;
    }
    let gap = b.global_avgpool("gap", prev);
    b.linear("fc", gap, classes);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every mappable random network simulates to completion with conserved
    /// accounting: all images finish, in order, and every cluster's activity
    /// breakdown tiles the makespan exactly.
    #[test]
    fn random_networks_map_and_simulate_conservatively(
        n_layers in 1usize..5,
        width_sel in 0usize..3,
        with_residual in any::<bool>(),
        batch in 1usize..5,
        seed in 0u64..1000,
    ) {
        let widths: Vec<usize> = (0..n_layers)
            .map(|i| [8, 16, 32][ (width_sel + i) % 3 ])
            .collect();
        let g = build_graph(&widths, with_residual, 4 + (seed % 7) as usize);
        let arch = ArchConfig::small(4, 8);
        let Ok(m) = map_network(&g, &arch, MappingStrategy::OnChipResiduals) else {
            // Too big for the 32-cluster test platform — not a failure.
            return Ok(());
        };
        let r = simulate(&g, &m, &arch, batch).unwrap();

        // All images complete, monotonically.
        prop_assert_eq!(r.image_completions.len(), batch);
        for w in r.image_completions.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
        prop_assert!(*r.image_completions.last().unwrap() <= r.makespan);

        // Per-cluster activity tiles the makespan.
        for c in &r.clusters {
            let sum = c.compute + c.communication + c.synchronization + c.sleep;
            prop_assert_eq!(sum, r.makespan);
        }

        // Ops accounting is positive and ordered.
        prop_assert_eq!(r.nominal_ops, g.total_ops() * batch as u64);
        prop_assert!(r.useful_ops > 0);
        prop_assert!(r.executed_ops >= r.useful_ops);
    }

    /// Mapping is deterministic and placement never over-commits clusters.
    #[test]
    fn mapping_respects_cluster_budget(
        n_layers in 1usize..6,
        with_residual in any::<bool>(),
    ) {
        let widths: Vec<usize> = (0..n_layers).map(|i| [16, 32, 64][i % 3]).collect();
        let g = build_graph(&widths, with_residual, 10);
        let arch = ArchConfig::paper();
        let m1 = map_network(&g, &arch, MappingStrategy::OnChipResiduals).unwrap();
        let m2 = map_network(&g, &arch, MappingStrategy::OnChipResiduals).unwrap();
        prop_assert_eq!(&m1, &m2);
        prop_assert!(m1.n_clusters_used <= arch.n_clusters());
        // Every cluster id is unique.
        let mut ids: Vec<usize> = m1
            .stages
            .iter()
            .flat_map(|s| s.clusters.iter().copied())
            .chain(m1.residuals.storage_clusters.iter().copied())
            .collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), before);
    }

    /// Throughput never decreases when the platform gets more clusters.
    #[test]
    fn bigger_platforms_never_hurt(batch in 1usize..4) {
        let g = build_graph(&[16, 32], false, 8);
        let small = ArchConfig::small(4, 8);
        let big = ArchConfig::small(4, 16);
        let (Ok(ms), Ok(mb)) = (
            map_network(&g, &small, MappingStrategy::OnChipResiduals),
            map_network(&g, &big, MappingStrategy::OnChipResiduals),
        ) else {
            return Ok(());
        };
        let rs = simulate(&g, &ms, &small, batch).unwrap();
        let rb = simulate(&g, &mb, &big, batch).unwrap();
        // Allow 2% tolerance: placement shifts can move DMA routes slightly.
        prop_assert!(
            rb.makespan.as_ps() as f64 <= rs.makespan.as_ps() as f64 * 1.02,
            "big {} vs small {}", rb.makespan, rs.makespan
        );
    }
}
