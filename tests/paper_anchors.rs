//! Integration tests pinning the quantitative anchors the paper states in
//! prose — the strongest cross-crate checks we have.

use aimc_platform::prelude::*;

fn paper_setup(strategy: MappingStrategy) -> (Graph, ArchConfig, SystemMapping) {
    let g = resnet18(256, 256, 1000);
    let arch = ArchConfig::paper();
    let m = map_network(&g, &arch, strategy).expect("paper workload maps");
    (g, arch, m)
}

#[test]
fn ideal_platform_throughput_is_516_tops() {
    // Fig. 6 "ideal" bar: 512 IMAs × 2·256·256 ops / 130 ns.
    let arch = ArchConfig::paper();
    assert!((arch.ideal_tops() - 516.1).abs() < 1.0);
}

#[test]
fn deep_conv_needs_40_clusters_and_20_way_reductions() {
    // Sec. V-1: "Layer 22 features 2.3M parameters, requiring 40 clusters";
    // Sec. V-3: "sum up the partial products of up to 20 clusters".
    let (g, _, m) = paper_setup(MappingStrategy::Naive);
    assert_eq!(g.node(21).kind.params(), 2_359_296);
    let per_node: usize = m
        .stages
        .iter()
        .filter(|s| s.node == 21)
        .map(|s| s.total_clusters())
        .sum();
    assert_eq!(per_node, 40);
    let analog = m
        .stages
        .iter()
        .find(|s| s.name == "conv21")
        .and_then(|s| s.analog.as_ref())
        .expect("conv21 is analog");
    assert_eq!(analog.split.row_splits, 18, "≈20 partials per column group");
}

#[test]
fn layer12_maps_to_10_clusters_with_replication_2() {
    // Sec. VI: "Layer 12 (i.e., group 3) is executed on 10 clusters, with
    // data-replication factor of 2".
    let (_, _, m) = paper_setup(MappingStrategy::OnChipResiduals);
    let s = m
        .stages
        .iter()
        .find(|s| s.name == "conv12")
        .expect("conv12 mapped");
    assert_eq!(s.lanes, 2, "replication factor");
    assert_eq!(s.total_clusters(), 10, "clusters for Layer 12");
}

#[test]
fn residual_footprint_is_1_6_mb_needing_2_spare_clusters() {
    // Sec. V-4: "ResNet-18 requires 1.6 MB to simultaneously store all the
    // residuals" and the fix costs "2 more clusters".
    let (_, _, m) = paper_setup(MappingStrategy::OnChipResiduals);
    let mb = m.residuals.total_bytes as f64 / (1024.0 * 1024.0);
    assert!((1.4..1.9).contains(&mb), "residual footprint {mb} MB");
    assert_eq!(m.residuals.storage_clusters.len(), 2);
}

#[test]
fn cluster_usage_matches_the_papers_322_of_512_regime() {
    let (_, _, m) = paper_setup(MappingStrategy::OnChipResiduals);
    assert!(
        (280..=380).contains(&m.n_clusters_used),
        "used {} clusters",
        m.n_clusters_used
    );
}

#[test]
fn optimization_sequence_improves_throughput_in_paper_order() {
    // Fig. 5A: naive < +replication/parallelization < +on-chip residuals.
    let g = resnet18(256, 256, 1000);
    let arch = ArchConfig::paper();
    let mut tops = Vec::new();
    for s in [
        MappingStrategy::Naive,
        MappingStrategy::Balanced,
        MappingStrategy::OnChipResiduals,
    ] {
        let m = map_network(&g, &arch, s).unwrap();
        let r = simulate(&g, &m, &arch, 8).unwrap();
        tops.push(r.tops());
    }
    assert!(tops[1] > tops[0] * 1.3, "replication gain: {tops:?}");
    assert!(tops[2] > tops[1] * 1.3, "residual gain: {tops:?}");
}

#[test]
fn headline_metrics_land_in_the_papers_regime() {
    // Sec. VI: 20.2 TOPS, 3303 img/s, 15 mJ, 6.5 TOPS/W, 42 GOPS/mm²,
    // 480 mm². Our model is within small factors (see EXPERIMENTS.md).
    let (g, arch, m) = paper_setup(MappingStrategy::OnChipResiduals);
    let r = simulate(&g, &m, &arch, 16).unwrap();
    let h = Headline::compute(
        &m,
        &arch,
        &r,
        &EnergyModel::default(),
        &AreaModel::default(),
    );
    assert!((10.0..60.0).contains(&h.tops), "TOPS {}", h.tops);
    assert!(
        (2000.0..16000.0).contains(&h.images_per_s),
        "img/s {}",
        h.images_per_s
    );
    assert!((8.0..30.0).contains(&h.energy_mj), "energy {}", h.energy_mj);
    assert!(
        (2.0..12.0).contains(&h.tops_per_w),
        "TOPS/W {}",
        h.tops_per_w
    );
    assert!((h.area_mm2 - 480.0).abs() < 0.5, "area {}", h.area_mm2);
    assert!(
        (1.0..6.0).contains(&(r.makespan.as_ms_f64())),
        "makespan {}",
        r.makespan
    );
}

#[test]
fn waterfall_reproduces_fig6_structure() {
    let (g, arch, m) = paper_setup(MappingStrategy::OnChipResiduals);
    let r = simulate(&g, &m, &arch, 16).unwrap();
    let w = Waterfall::compute(&g, &m, &arch, &r);
    let f = w.cumulative_factors();
    // Paper: 1.6x / 4.7x / 23.8x / 28.4x — monotone increase, global < 2.2x,
    // final an order of magnitude (10–35x) below ideal.
    assert!(f[0] < f[1] && f[1] < f[2] && f[2] <= f[3], "{f:?}");
    assert!((1.2..2.2).contains(&f[0]), "{f:?}");
    assert!((10.0..35.0).contains(&f[3]), "{f:?}");
}

#[test]
fn fig7_group_profile_matches_paper_shape() {
    // Fig. 7: mid-network groups (large IFMs, high reuse) dominate; the
    // 8x8x512 group is the least efficient conv group (~50 GOPS/mm²).
    let (g, arch, m) = paper_setup(MappingStrategy::OnChipResiduals);
    let eff = group_area_efficiency(&g, &m, &arch, &AreaModel::default());
    assert_eq!(eff.len(), 6);
    let best = eff.iter().map(|e| e.gops_per_mm2).fold(0.0f64, f64::max);
    let best_group = eff.iter().position(|e| e.gops_per_mm2 == best).unwrap();
    assert!((2..=4).contains(&best_group), "peak group {best_group}");
    assert!(
        eff[5].gops_per_mm2 < best / 2.0,
        "deep group must be far below peak: {:?}",
        eff.iter().map(|e| e.gops_per_mm2).collect::<Vec<_>>()
    );
    assert!((15.0..200.0).contains(&eff[5].gops_per_mm2));
}

#[test]
fn hbm_residual_traffic_is_the_balanced_bottleneck() {
    // Sec. V-4: staging residuals in HBM "significantly increases the
    // traffic towards this high-latency memory controller, forming a
    // bottleneck for the whole pipeline".
    let g = resnet18(256, 256, 1000);
    let arch = ArchConfig::paper();
    let m_hbm = map_network(&g, &arch, MappingStrategy::Balanced).unwrap();
    let m_l1 = map_network(&g, &arch, MappingStrategy::OnChipResiduals).unwrap();
    let r_hbm = simulate(&g, &m_hbm, &arch, 8).unwrap();
    let r_l1 = simulate(&g, &m_l1, &arch, 8).unwrap();
    // HBM controller must be substantially busier with HBM residuals.
    assert!(
        r_hbm.hbm_busy.as_ps() > 10 * r_l1.hbm_busy.as_ps(),
        "hbm busy {} vs {}",
        r_hbm.hbm_busy,
        r_l1.hbm_busy
    );
    assert!(r_l1.makespan < r_hbm.makespan);
}
