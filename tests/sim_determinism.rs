//! The sharded timing simulator's hard invariant, plus the hop-by-hop
//! fabric's fidelity bounds against the reservation oracle.
//!
//! **Invariant:** `simulate_with` produces a bit-identical [`RunReport`] —
//! makespan, image completions, energy tallies, every fire record, every
//! per-link statistic — for `Serial` vs `Threads(N)` vs `PinnedThreads(N)`
//! at any thread count. The report is a pure function of the inputs.
//!
//! **Oracle:** the event-driven [`Fabric`] reproduces the reservation
//! engine ([`Noc`]) arrival times exactly on contention-free routes, and
//! per-link served bytes conserve the bytes the injected transactions were
//! routed across.

use aimc_platform::noc::{Endpoint, Fabric, Noc, NocConfig, TxnKind};
use aimc_platform::prelude::*;
use proptest::prelude::*;

/// Builds a random plain CNN from a compact genome (same generator family
/// as `tests/invariants.rs`).
fn build_graph(widths: &[usize], with_residual: bool, classes: usize) -> Graph {
    let mut b = GraphBuilder::new(Shape::new(3, 16, 16));
    let mut prev = b.conv("c0", b.input(), ConvCfg::k3(3, widths[0], 1));
    let mut prev_width = widths[0];
    for (i, &w) in widths.iter().enumerate().skip(1) {
        let stride = if i % 2 == 0 { 2 } else { 1 };
        let id = b.conv(
            &format!("c{i}"),
            Some(prev),
            ConvCfg::k3(prev_width, w, stride),
        );
        prev = if with_residual && stride == 1 && w == prev_width {
            b.residual(&format!("r{i}"), id, prev, None)
        } else {
            id
        };
        prev_width = w;
    }
    let gap = b.global_avgpool("gap", prev);
    b.linear("fc", gap, classes);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random arch configs × batch sizes × thread counts: the sharded
    /// simulation is bit-identical to the serial one.
    #[test]
    fn sharded_reports_are_bit_identical(
        n_layers in 1usize..5,
        width_sel in 0usize..3,
        with_residual in any::<bool>(),
        batch in 1usize..5,
        quads in 0usize..2,
        threads in 2usize..6,
    ) {
        let widths: Vec<usize> = (0..n_layers)
            .map(|i| [8, 16, 32][(width_sel + i) % 3])
            .collect();
        let g = build_graph(&widths, with_residual, 4 + n_layers);
        let arch = ArchConfig::small(4, [8, 16][quads]);
        let Ok(m) = map_network(&g, &arch, MappingStrategy::OnChipResiduals) else {
            return Ok(()); // too big for the small test platform
        };
        let serial = simulate(&g, &m, &arch, batch).unwrap();
        for par in [Parallelism::Threads(threads), Parallelism::PinnedThreads(threads)] {
            let sharded = simulate_with(&g, &m, &arch, batch, par).unwrap();
            prop_assert_eq!(&serial, &sharded, "divergence under {:?}", par);
        }
        // Per-link bytes conserve the injected transaction bytes.
        prop_assert_eq!(serial.fabric.routed_bytes, serial.fabric.link_bytes);
        prop_assert_eq!(serial.fabric.injected, serial.fabric.completed);
    }

    /// Oracle bound, contention-free: a lone transfer's fabric completion
    /// time equals the reservation engine's exactly — for random endpoint
    /// pairs, sizes and directions.
    #[test]
    fn lone_transfers_match_reservation_oracle(
        src in 0usize..32,
        dst in 0usize..32,
        to_hbm in any::<bool>(),
        bytes in 1usize..10_000,
        is_read in any::<bool>(),
    ) {
        let cfg = NocConfig::small(4, 8);
        let kind = if is_read { TxnKind::Read } else { TxnKind::Write };
        let s = Endpoint::Cluster(src);
        let d = if to_hbm { Endpoint::Hbm } else { Endpoint::Cluster(dst) };
        let mut noc = Noc::new(cfg.clone());
        let expect = noc.transfer(SimTime::ZERO, kind, s, d, bytes);
        let mut fab = Fabric::new(cfg);
        fab.inject(SimTime::ZERO, kind, s, d, bytes, 7);
        let done = fab.advance_all();
        prop_assert_eq!(done.len(), 1);
        prop_assert_eq!(done[0], (expect, 7));
    }
}

#[test]
fn resnet18_paper_platform_is_thread_invariant() {
    // The headline workload on the full 512-cluster platform: one heavy
    // anchor outside proptest so the invariant is exercised at scale.
    let g = resnet18(256, 256, 1000);
    let arch = ArchConfig::paper();
    let m = map_network(&g, &arch, MappingStrategy::OnChipResiduals).unwrap();
    let serial = simulate(&g, &m, &arch, 2).unwrap();
    let sharded = simulate_with(&g, &m, &arch, 2, Parallelism::Threads(4)).unwrap();
    assert_eq!(serial, sharded);
    assert_eq!(serial.fabric.routed_bytes, serial.fabric.link_bytes);
}

#[test]
fn contended_transfers_stay_within_one_router_latency_of_oracle() {
    // Two bursts converging on one destination from different quadrants.
    // The engines may legitimately order the contended link differently
    // (physical arrival vs reservation order), but each completion stays
    // within one router traversal of the oracle.
    let cfg = NocConfig::small(4, 8);
    let router_lat = cfg.frequency.cycles_to_time(aimc_platform::sim::Cycles(
        *cfg.router_latency_cycles.iter().max().unwrap(),
    ));
    let streams = [
        (Endpoint::Cluster(0), 256usize),
        (Endpoint::Cluster(17), 256),
    ];
    let dst = Endpoint::Cluster(5);
    let mut noc = Noc::new(cfg.clone());
    let mut expect: Vec<SimTime> = streams
        .iter()
        .map(|&(s, b)| noc.transfer(SimTime::ZERO, TxnKind::Write, s, dst, b))
        .collect();
    let mut fab = Fabric::new(cfg);
    for (i, &(s, b)) in streams.iter().enumerate() {
        fab.inject(SimTime::ZERO, TxnKind::Write, s, dst, b, i as u64);
    }
    let mut done: Vec<SimTime> = fab.advance_all().into_iter().map(|(t, _)| t).collect();
    expect.sort();
    done.sort();
    for (e, d) in expect.iter().zip(&done) {
        let diff = if e > d {
            e.saturating_sub(*d)
        } else {
            d.saturating_sub(*e)
        };
        assert!(
            diff <= router_lat,
            "fabric {d} vs reservation {e}: diff {diff} > router latency {router_lat}"
        );
    }
}

#[test]
fn session_run_report_is_parallelism_invariant() {
    // End-to-end through the facade: the session's parallelism knob now
    // reaches the timing simulator without changing its results.
    let g = build_graph(&[8, 16], true, 6);
    let run = |par: Parallelism| {
        let mut s = Platform::builder()
            .graph(g.clone())
            .arch(ArchConfig::small(4, 8))
            .parallelism(par)
            .build()
            .unwrap()
            .session();
        s.run(RunSpec { batch: 3 }).unwrap().clone()
    };
    let serial = run(Parallelism::Serial);
    let sharded = run(Parallelism::Threads(4));
    assert_eq!(serial, sharded);
    assert!(serial.fabric.links.iter().any(|l| l.transactions > 0));
}
