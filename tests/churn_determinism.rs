//! The elastic fleet's hard invariant, end-to-end through
//! `Platform::serve_fleet_with` under **churn**: for a fixed seed, every
//! request that completes returns logits bit-identical to a solo
//! `Session::infer_one` stream of the same images — while connections are
//! severed mid-stream (reconnect-and-replay), a shard is killed
//! permanently mid-lease (eviction + orphan rescue on survivors, at the
//! original coordinates), or a shard joins mid-stream (programmed from
//! the fleet seed and replayed through the drift history).
//!
//! Faults are injected with the seeded frame-aware `FaultyEnd` wrapper
//! from `aimc-wire`: remote shards run real `ShardServer`s over in-memory
//! duplex pipes, and each (re)dial of the scripted connector wires the
//! client's writer through the next `FaultPlan` — an exhausted script
//! refuses further dials, which is how a permanently dead host looks.
//!
//! The analog backend with real noise is the hard case on purpose: noise
//! is keyed by the global stream coordinate, so a request re-executed at
//! a *shifted* coordinate — or a joiner missing a drift transition —
//! changes logits. Bit-identity therefore proves both settlement and
//! coordinate stability.

use aimc_platform::prelude::*;
use aimc_platform::wire::{duplex, FaultPlan, FaultyEnd};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn small_cnn() -> Graph {
    let mut b = GraphBuilder::new(Shape::new(3, 8, 8));
    let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 8, 1));
    let c1 = b.conv("c1", Some(c0), ConvCfg::k3(8, 8, 1));
    let r = b.residual("r", c1, c0, None);
    let p = b.global_avgpool("gap", r);
    b.linear("fc", p, 4);
    b.finish()
}

fn random_images(n: usize, seed: u64) -> Vec<Tensor> {
    let shape = Shape::new(3, 8, 8);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Tensor::from_vec(
                shape,
                (0..shape.numel())
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect(),
            )
        })
        .collect()
}

fn platform() -> Platform {
    Platform::builder()
        .graph(small_cnn())
        .arch(ArchConfig::small(8, 8))
        .he_weights(42)
        .build()
        .unwrap()
}

fn noisy_backend() -> Backend {
    // Real noise levels and small arrays: every MVM consumes
    // coordinate-keyed randomness — the hardest case for the invariance.
    Backend::analog(7, XbarConfig::hermes_256().with_size(32, 4))
}

/// Solo reference: one `infer_one` per image, in stream order, on a fresh
/// single session.
fn solo_logits(backend: &Backend, images: &[Tensor]) -> Vec<Tensor> {
    let mut s = platform().session();
    images
        .iter()
        .map(|x| s.infer_one(x, backend.clone()).unwrap())
        .collect()
}

/// A [`Connect`]or over in-memory pipes with a scripted fault schedule:
/// each dial spawns a fresh `serve_stream` session against the shared
/// server and wires the client's writer through the next [`FaultPlan`].
/// An exhausted script refuses further dials — a permanently dead host.
struct PipeConnector {
    server: Arc<ShardServer>,
    plans: Mutex<VecDeque<FaultPlan>>,
}

impl Connect for PipeConnector {
    fn connect(&self) -> io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        let Some(plan) = self.plans.lock().unwrap().pop_front() else {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "host is gone",
            ));
        };
        let (client_end, server_end) = duplex();
        let server = Arc::clone(&self.server);
        std::thread::spawn(move || {
            let reader = server_end.clone();
            let writer = server_end.clone();
            let _ = server.serve_stream(reader, writer);
            // A finished session hangs up, so the client sees EOF.
            server_end.close();
        });
        let reader = client_end.clone();
        Ok((Box::new(reader), Box::new(FaultyEnd::new(client_end, plan))))
    }
}

/// A wire-protocol shard whose link follows `plans`, one per dial, with a
/// small reconnect budget so dead-host detection stays fast.
fn wire_shard(
    platform: &Platform,
    batch: BatchPolicy,
    backend: &Backend,
    plans: Vec<FaultPlan>,
) -> Box<dyn ShardTransport> {
    let server = Arc::new(platform.shard_server(batch, backend).unwrap());
    let connector = PipeConnector {
        server,
        plans: Mutex::new(plans.into()),
    };
    Box::new(
        TcpTransport::with_connector(
            Box::new(connector),
            RetryPolicy::new(2, Duration::from_millis(1)),
        )
        .expect("first dial of a scripted connector succeeds"),
    )
}

fn local_shard(
    platform: &Platform,
    batch: BatchPolicy,
    backend: &Backend,
) -> Box<dyn ShardTransport> {
    Box::new(platform.local_shard(batch, backend).unwrap())
}

/// What happens to the fleet mid-stream.
#[derive(Debug, Clone, Copy)]
enum Churn {
    /// The faulty shard's link is severed once; a redial succeeds and the
    /// transport replays its unacknowledged window (go-back-N).
    Sever,
    /// The faulty shard's link is severed and every redial is refused: the
    /// transport closes, parks its strays, and the router evicts it and
    /// rescues the strays on survivors at their original coordinates.
    Kill,
    /// A fresh shard joins mid-stream via `FleetHandle::add_shard` and
    /// serves part of the remaining stream.
    Join,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random request streams × churn schedule {sever, kill, join} ×
    /// survivor mix {local, wire, both} × lease length × routing policy ×
    /// sever point: every request settles and the completed logits are
    /// bit-identical to the solo stream — churn is invisible.
    #[test]
    fn churn_is_invisible_in_completed_logits(
        seed in 0u64..1_000,
        n in 4usize..10,
        churn_idx in 0usize..3,
        mix_idx in 0usize..3,
        lease_idx in 0usize..3,
        route_idx in 0usize..2,
        sever_frame in 2u64..9,
        mid_frame in any::<bool>(),
    ) {
        let churn = [Churn::Sever, Churn::Kill, Churn::Join][churn_idx];
        let lease = [1u64, 4, 64][lease_idx];
        let route = [RoutePolicy::RoundRobin, RoutePolicy::LeastQueueDepth][route_idx];
        let policy = FleetPolicy::new(route).with_lease_len(lease);
        let batch = BatchPolicy::new(2, Duration::from_millis(1));
        let images = random_images(n, seed);
        let platform = platform();
        let backend = noisy_backend();
        let want = solo_logits(&backend, &images);

        // The fatal plan: reorder a quarter of the request frames, then
        // sever — cleanly between frames or mid-frame.
        let fault = {
            let p = FaultPlan::new(seed).swap_per_mille(250).sever_after(sever_frame);
            if mid_frame { p.sever_mid_frame() } else { p }
        };

        let mut transports: Vec<Box<dyn ShardTransport>> = Vec::new();
        match churn {
            // One clean plan after the fault: the redial succeeds.
            Churn::Sever => transports.push(wire_shard(
                &platform, batch, &backend, vec![fault, FaultPlan::new(seed ^ 1)],
            )),
            // No plan after the fault: every redial is refused.
            Churn::Kill => transports.push(wire_shard(&platform, batch, &backend, vec![fault])),
            Churn::Join => {}
        }
        match mix_idx {
            0 => transports.push(local_shard(&platform, batch, &backend)),
            1 => transports.push(wire_shard(
                &platform, batch, &backend, vec![FaultPlan::new(seed ^ 2)],
            )),
            _ => {
                transports.push(local_shard(&platform, batch, &backend));
                transports.push(wire_shard(
                    &platform, batch, &backend, vec![FaultPlan::new(seed ^ 3)],
                ));
            }
        }
        let fleet = platform.serve_fleet_with(transports, policy).unwrap();
        let seats = fleet.shard_count();

        let half = n / 2;
        let mut pendings: Vec<Pending> = Vec::new();
        for x in &images[..half] {
            pendings.push(fleet.submit(x.clone()).unwrap());
        }
        if matches!(churn, Churn::Join) {
            let joiner = if mix_idx == 1 {
                wire_shard(&platform, batch, &backend, vec![FaultPlan::new(seed ^ 4)])
            } else {
                local_shard(&platform, batch, &backend)
            };
            fleet.add_shard(joiner).unwrap();
        }
        for x in &images[half..] {
            pendings.push(fleet.submit(x.clone()).unwrap());
        }

        // Strays parked by a permanent death are rescued on drain at the
        // latest, so after it every pending settles with logits.
        fleet.drain();
        let got: Vec<Tensor> = pendings
            .into_iter()
            .map(|p| p.wait().expect("every request settles under churn"))
            .collect();

        // Seats are append-only: eviction shrinks only the live count.
        let expected_seats = if matches!(churn, Churn::Join) { seats + 1 } else { seats };
        prop_assert_eq!(fleet.shard_count(), expected_seats);
        prop_assert!(fleet.live_shard_count() >= 1, "a survivor remains live");
        fleet.shutdown();
        prop_assert_eq!(
            &want, &got,
            "{:?} (mix {}, lease {}, {:?}, sever@{}, mid={}) changed a logit",
            churn, mix_idx, lease, route, sever_frame, mid_frame
        );
    }
}

/// A permanently killed shard mid-lease never shifts a surviving
/// coordinate: lease 4 puts the whole first block on the doomed shard,
/// the sever lands inside it, and the stranded requests re-run at their
/// original coordinates on the survivor — so the noisy-analog logits stay
/// bit-identical to solo, which they could not if any index moved.
#[test]
fn permanent_kill_mid_lease_is_invisible() {
    let backend = noisy_backend();
    let images = random_images(8, 37);
    let want = solo_logits(&backend, &images);
    let platform = platform();
    let batch = BatchPolicy::new(2, Duration::from_millis(1));
    // Frame 1 is the protocol Hello, frame 2 the registry's spec probe,
    // frame 3 the lease grant; the sever truncates a request frame of the
    // first lease block. Redials are refused: a permanently dead host.
    let transports: Vec<Box<dyn ShardTransport>> = vec![
        wire_shard(
            &platform,
            batch,
            &backend,
            vec![FaultPlan::new(41).sever_after(4).sever_mid_frame()],
        ),
        local_shard(&platform, batch, &backend),
    ];
    let fleet = platform
        .serve_fleet_with(
            transports,
            FleetPolicy::new(RoutePolicy::RoundRobin).with_lease_len(4),
        )
        .unwrap();
    let pendings: Vec<Pending> = images
        .iter()
        .map(|x| fleet.submit(x.clone()).unwrap())
        .collect();
    fleet.drain();
    let got: Vec<Tensor> = pendings.into_iter().map(|p| p.wait().unwrap()).collect();
    assert_eq!(fleet.live_shard_count(), 1, "the dead shard was evicted");
    assert_eq!(fleet.shard_count(), 2, "seats outlive eviction");
    fleet.shutdown();
    assert_eq!(want, got, "eviction shifted a coordinate or lost a request");
}

/// A joiner arriving *after* a fleet-wide drift transition must be
/// programmed from the fleet seed and replayed through the recorded drift
/// history: round-robin then lands half the remaining stream on it, and
/// the logits stay bit-identical to a solo session taken through the same
/// transition — which they could not if the joiner's conductances missed
/// the drift.
#[test]
fn joiner_after_drift_matches_solo() {
    let backend = noisy_backend();
    let images = random_images(6, 31);
    let (a, b) = images.split_at(3);

    let mut solo = platform().session();
    let mut want: Vec<Tensor> = a
        .iter()
        .map(|x| solo.infer_one(x, backend.clone()).unwrap())
        .collect();
    solo.apply_drift(500.0).unwrap();
    want.extend(
        b.iter()
            .map(|x| solo.infer_one(x, backend.clone()).unwrap()),
    );

    let platform = platform();
    let batch = BatchPolicy::new(2, Duration::from_millis(1));
    let fleet = platform
        .serve_fleet(1, batch, RoutePolicy::RoundRobin, &backend)
        .unwrap();
    let mut got: Vec<Tensor> = a
        .iter()
        .map(|x| fleet.submit(x.clone()).unwrap())
        .map(|p| p.wait().unwrap())
        .collect();
    assert!(fleet.apply_drift(500.0), "analog replicas model drift");
    fleet
        .add_shard(local_shard(&platform, batch, &backend))
        .unwrap();
    assert_eq!(fleet.live_shard_count(), 2);
    got.extend(
        b.iter()
            .map(|x| fleet.submit(x.clone()).unwrap())
            .collect::<Vec<Pending>>()
            .into_iter()
            .map(|p| p.wait().unwrap()),
    );
    fleet.shutdown();
    assert_eq!(want, got, "the joiner missed the drift transition");
}
