//! Workload generality: the mapper and runtime must handle the network
//! families the paper's related work targets (VGG-like, deeper ResNets),
//! not just the flagship ResNet-18.

use aimc_platform::dnn::{mobilenet_v1_lite, resnet34, vgg11, vgg16};
use aimc_platform::prelude::*;

#[test]
fn vgg11_maps_without_residual_machinery() {
    // VGG has no skip edges: no residual storage should be allocated even
    // under the OnChipResiduals strategy.
    let g = vgg11(224, 224, 1000);
    let arch = ArchConfig::paper();
    let m = map_network(&g, &arch, MappingStrategy::OnChipResiduals).unwrap();
    assert!(m.residuals.storage_clusters.is_empty());
    assert_eq!(m.residuals.total_bytes, 0);
    let r = simulate(&g, &m, &arch, 4).unwrap();
    assert!(r.image_completions.iter().all(|&t| t > SimTime::ZERO));
    assert!(r.tops() > 1.0, "VGG-11 TOPS {}", r.tops());
}

#[test]
fn vgg16_fits_and_outweighs_resnet18_in_compute() {
    let g = vgg16(224, 224, 1000);
    let r18 = resnet18(224, 224, 1000);
    assert!(g.total_macs() > 5 * r18.total_macs());
    let arch = ArchConfig::paper();
    let m = map_network(&g, &arch, MappingStrategy::Balanced).unwrap();
    assert!(m.n_clusters_used <= 512);
    let r = simulate(&g, &m, &arch, 2).unwrap();
    assert_eq!(r.image_completions.len(), 2);
}

#[test]
fn resnet34_maps_with_more_stages_than_resnet18() {
    let g34 = resnet34(256, 256, 1000);
    let g18 = resnet18(256, 256, 1000);
    let arch = ArchConfig::paper();
    let m34 = map_network(&g34, &arch, MappingStrategy::OnChipResiduals).unwrap();
    let m18 = map_network(&g18, &arch, MappingStrategy::OnChipResiduals).unwrap();
    assert!(m34.stages.len() > m18.stages.len());
    assert!(m34.n_clusters_used <= 512, "used {}", m34.n_clusters_used);
    // 16 skip edges → bigger residual footprint than ResNet-18's 8.
    assert!(m34.residuals.total_bytes > m18.residuals.total_bytes);
    let r = simulate(&g34, &m34, &arch, 4).unwrap();
    assert!(r.tops() > 1.0, "ResNet-34 TOPS {}", r.tops());
}

#[test]
fn mobilenet_mixes_digital_depthwise_and_analog_pointwise() {
    use aimc_platform::core::StageRole;
    let g = mobilenet_v1_lite(224, 224, 1000);
    let arch = ArchConfig::paper();
    let m = map_network(&g, &arch, MappingStrategy::OnChipResiduals).unwrap();
    let digital_dw = m.stages.iter().filter(|s| s.name.starts_with("dw")).count();
    assert_eq!(digital_dw, 8);
    for s in m.stages.iter().filter(|s| s.name.starts_with("dw")) {
        assert!(
            matches!(s.role, StageRole::Digital),
            "{} must be digital",
            s.name
        );
        assert!(s.analog.is_none());
    }
    for s in m
        .stages
        .iter()
        .filter(|s| s.name.starts_with("pw") && !s.name.contains("/red"))
    {
        assert!(s.analog.is_some(), "{} must be analog", s.name);
    }
    let r = simulate(&g, &m, &arch, 4).unwrap();
    assert_eq!(r.image_completions.len(), 4);
    assert!(r.images_per_s() > 1000.0);
}

#[test]
fn deeper_network_sustains_similar_steady_throughput() {
    // Pipelining argument (Sec. IV-3): depth adds latency, not much
    // throughput loss, as long as the platform has clusters to hold it.
    let g34 = resnet34(256, 256, 1000);
    let g18 = resnet18(256, 256, 1000);
    let arch = ArchConfig::paper();
    let m34 = map_network(&g34, &arch, MappingStrategy::OnChipResiduals).unwrap();
    let m18 = map_network(&g18, &arch, MappingStrategy::OnChipResiduals).unwrap();
    let r34 = simulate(&g34, &m34, &arch, 8).unwrap();
    let r18 = simulate(&g18, &m18, &arch, 8).unwrap();
    // Single-image latency grows with depth…
    assert!(r34.image_completions[0] > r18.image_completions[0]);
    // …but steady images/s stays within 4x (budget pressure allowed).
    assert!(
        r34.images_per_s() > r18.images_per_s() / 4.0,
        "34: {} vs 18: {}",
        r34.images_per_s(),
        r18.images_per_s()
    );
}
