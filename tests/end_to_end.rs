//! Cross-crate integration: functional correctness (golden vs analog
//! executors) composed with the mapping compiler and the timing simulator.

use aimc_platform::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_image(shape: Shape, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_vec(
        shape,
        (0..shape.numel())
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect(),
    )
}

fn small_cnn() -> Graph {
    let mut b = GraphBuilder::new(Shape::new(3, 16, 16));
    let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 8, 1));
    let c1 = b.conv("c1", Some(c0), ConvCfg::k3(8, 8, 1));
    let r = b.residual("r", c1, c0, None);
    let c2 = b.conv("c2", Some(r), ConvCfg::k3(8, 16, 2));
    let gap = b.global_avgpool("gap", c2);
    b.linear("fc", gap, 4);
    b.finish()
}

#[test]
fn analog_executor_tracks_golden_on_the_mapped_split_structure() {
    // The AimcExecutor splits layers across crossbars exactly like the
    // mapper (rows/cols beyond 256); its output must track the golden
    // executor within analog tolerance.
    let g = small_cnn();
    let w = he_init(&g, 3);
    let x = random_image(g.input_shape(), 11);
    let golden = infer_golden(&g, &w, &x);
    let analog = AimcExecutor::program(&g, &w, &XbarConfig::ideal(256, 256), 5).unwrap();
    let y = analog.infer(&x);
    for (a, b) in y.data().iter().zip(golden.data()) {
        assert!((a - b).abs() < 0.05 * b.abs().max(1.0), "{a} vs {b}");
    }
}

#[test]
fn same_graph_flows_through_compiler_and_simulator() {
    let g = small_cnn();
    let arch = ArchConfig::small(4, 8);
    for strategy in [MappingStrategy::Naive, MappingStrategy::OnChipResiduals] {
        let m = map_network(&g, &arch, strategy).unwrap();
        let r = simulate(&g, &m, &arch, 4).unwrap();
        assert_eq!(r.batch, 4);
        assert!(r.image_completions.iter().all(|&t| t > SimTime::ZERO));
        assert_eq!(r.nominal_ops, g.total_ops() * 4);
    }
}

#[test]
fn breakdown_rows_cover_every_compute_cluster_exactly_once() {
    let g = small_cnn();
    let arch = ArchConfig::small(4, 8);
    let m = map_network(&g, &arch, MappingStrategy::OnChipResiduals).unwrap();
    let r = simulate(&g, &m, &arch, 2).unwrap();
    let mut ids: Vec<usize> = r.clusters.iter().map(|c| c.cluster).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), r.clusters.len(), "duplicate cluster rows");
    assert_eq!(ids.len(), m.n_clusters_used);
}

#[test]
fn batch_scaling_improves_throughput_until_saturation() {
    let g = resnet18(256, 256, 1000);
    let arch = ArchConfig::paper();
    let m = map_network(&g, &arch, MappingStrategy::OnChipResiduals).unwrap();
    let t1 = simulate(&g, &m, &arch, 1).unwrap().tops();
    let t4 = simulate(&g, &m, &arch, 4).unwrap().tops();
    let t16 = simulate(&g, &m, &arch, 16).unwrap().tops();
    assert!(t4 > t1, "batch 4 {t4} vs 1 {t1}");
    assert!(t16 > t4, "batch 16 {t16} vs 4 {t4}");
    // Saturation: going 4→16 gains less than 4x.
    assert!(t16 < t4 * 4.0);
}

#[test]
fn whole_stack_is_deterministic() {
    let g = resnet18(256, 256, 1000);
    let arch = ArchConfig::paper();
    let run = || {
        let m = map_network(&g, &arch, MappingStrategy::OnChipResiduals).unwrap();
        let r = simulate(&g, &m, &arch, 4).unwrap();
        (
            r.makespan,
            r.events,
            r.hbm_bytes,
            r.image_completions.clone(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn quantization_noise_is_small_relative_to_activations() {
    // int8 deployment sanity: fake-quantizing intermediate activations
    // perturbs logits by less than the inter-class margin on average.
    let g = resnet18_cifar(10);
    let w = he_init(&g, 1);
    let x = random_image(g.input_shape(), 3);
    let outs = execute_golden(&g, &w, &x);
    let logits = outs.last().unwrap();
    let q = aimc_platform::dnn::quant::Quantizer::fit(logits.data());
    let fq = q.fake_quantize(logits);
    let max_err = logits
        .data()
        .iter()
        .zip(fq.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(max_err <= q.scale() / 2.0 + 1e-6);
    assert_eq!(logits.argmax(), fq.argmax());
}
