//! The QoS subsystem's hard invariant, end-to-end through
//! `Platform::serve_fleet_with`: **admission changes which requests run,
//! never what an admitted request computes.** For any random stream ×
//! shed pattern × class mix × batch-ordering × transport mix, the
//! admitted subset's logits are bit-identical to a solo
//! `Session::infer_one` stream of the same images — shedding never
//! shifts a surviving request's stream coordinate (the same discipline as
//! the refused-submission rollback: every shed synchronously releases its
//! claimed index).
//!
//! Shed patterns are made deterministic by restricting fleet class
//! budgets to {0, unbounded}: a zero-budget class sheds every request
//! with `ClassBudget`, independent of timing, while unbounded classes
//! always admit (queue depth 64 ≫ the streams used here). Timing-driven
//! shedding (pacer windows, deadline feasibility) is pinned by unit tests
//! in `aimc-serve`; this suite pins the *invariance* under shedding.

use aimc_platform::prelude::*;
use aimc_platform::wire::duplex;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::thread::JoinHandle;
use std::time::Duration;

fn small_cnn() -> Graph {
    let mut b = GraphBuilder::new(Shape::new(3, 8, 8));
    let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 8, 1));
    let c1 = b.conv("c1", Some(c0), ConvCfg::k3(8, 8, 1));
    let r = b.residual("r", c1, c0, None);
    let p = b.global_avgpool("gap", r);
    b.linear("fc", p, 4);
    b.finish()
}

fn random_images(n: usize, seed: u64) -> Vec<Tensor> {
    let shape = Shape::new(3, 8, 8);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Tensor::from_vec(
                shape,
                (0..shape.numel())
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect(),
            )
        })
        .collect()
}

fn platform() -> Platform {
    Platform::builder()
        .graph(small_cnn())
        .arch(ArchConfig::small(8, 8))
        .he_weights(42)
        .build()
        .unwrap()
}

fn noisy_backend() -> Backend {
    Backend::analog(7, XbarConfig::hermes_256().with_size(32, 4))
}

/// Solo reference: one `infer_one` per image, in stream order, on a fresh
/// single session.
fn solo_logits(backend: &Backend, images: &[Tensor]) -> Vec<Tensor> {
    let mut s = platform().session();
    images
        .iter()
        .map(|x| s.infer_one(x, backend.clone()).unwrap())
        .collect()
}

/// A class mix: one random priority per request, with an occasional
/// generous deadline (far beyond any feasibility estimate, so deadline
/// checks never shed — deadlines here exercise the EDF sort keys and the
/// wire encoding, not admission timing).
fn random_classes(n: usize, seed: u64) -> Vec<QosClass> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    (0..n)
        .map(|_| {
            let priority = Priority::ALL[rng.gen_range(0..Priority::COUNT)];
            let deadline = (rng.gen_range(0..10u32) < 3)
                .then(|| Duration::from_secs(60 + rng.gen_range(0..60)));
            QosClass { priority, deadline }
        })
        .collect()
}

/// Which transports back the fleet's shards.
#[derive(Debug, Clone, Copy)]
enum Mix {
    AllLocal,
    AllTcp,
    /// Alternating local / wire-protocol shards.
    Mixed,
}

/// A fleet plus the server threads backing its remote shards.
struct TestFleet {
    fleet: FleetHandle,
    servers: Vec<JoinHandle<()>>,
}

impl TestFleet {
    fn shutdown(self) {
        self.fleet.shutdown();
        for s in self.servers {
            s.join().expect("shard server settles after shutdown");
        }
    }
}

fn build_fleet(
    platform: &Platform,
    n_shards: usize,
    mix: Mix,
    policy: FleetPolicy,
    batch: BatchPolicy,
    backend: &Backend,
) -> TestFleet {
    let mut transports: Vec<Box<dyn ShardTransport>> = Vec::with_capacity(n_shards);
    let mut servers = Vec::new();
    for shard_id in 0..n_shards {
        let remote = match mix {
            Mix::AllLocal => false,
            Mix::AllTcp => true,
            Mix::Mixed => shard_id % 2 == 1,
        };
        if remote {
            let server = platform.shard_server(batch, backend).unwrap();
            let (client_end, server_end) = duplex();
            servers.push(std::thread::spawn({
                let reader = server_end.clone();
                let writer = server_end.clone();
                move || {
                    server
                        .serve_stream(reader, writer)
                        .expect("shard server protocol loop");
                    server_end.close();
                }
            }));
            let reader = client_end.clone();
            transports.push(Box::new(TcpTransport::over(reader, client_end)));
        } else {
            transports.push(Box::new(platform.local_shard(batch, backend).unwrap()));
        }
    }
    TestFleet {
        fleet: platform.serve_fleet_with(transports, policy).unwrap(),
        servers,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random stream × blocked-class subset (budget 0 vs unbounded) ×
    /// class mix × coalescer ordering {FIFO, EDF-within-priority} ×
    /// transport mix {all-local, all-tcp, mixed} × lease length: the
    /// admitted subset's logits are bit-identical to a solo stream of the
    /// admitted images, and every shed is typed `ClassBudget` on a
    /// blocked class.
    #[test]
    fn admitted_subset_is_bit_identical_to_solo(
        seed in 0u64..1_000,
        n in 1usize..8,
        shard_idx in 0usize..3,
        mix_idx in 0usize..3,
        lease_idx in 0usize..3,
        blocked_mask in 0u8..8,
        edf in any::<bool>(),
    ) {
        let n_shards = [1usize, 2, 3][shard_idx];
        let mix = [Mix::AllLocal, Mix::AllTcp, Mix::Mixed][mix_idx];
        let lease = [1u64, 4, 64][lease_idx];
        let ordering = if edf {
            QosOrdering::EdfWithinPriority
        } else {
            QosOrdering::Fifo
        };
        let batch = BatchPolicy::new(2, Duration::from_millis(1))
            .with_qos(QosPolicy::default().with_ordering(ordering));
        let mut policy = FleetPolicy::new(RoutePolicy::RoundRobin).with_lease_len(lease);
        let blocked = |p: Priority| blocked_mask & (1 << p.rank()) != 0;
        for p in Priority::ALL {
            if blocked(p) {
                policy = policy.with_class_budget(p, 0);
            }
        }

        let images = random_images(n, seed);
        let classes = random_classes(n, seed);
        let platform = platform();
        for backend in [Backend::Golden, noisy_backend()] {
            let tf = build_fleet(&platform, n_shards, mix, policy, batch, &backend);
            let mut admitted_images = Vec::new();
            let mut pendings = Vec::new();
            let mut expect_shed = [0u64; Priority::COUNT];
            for (image, class) in images.iter().zip(&classes) {
                match tf.fleet.submit_qos(image.clone(), *class).unwrap() {
                    Admission::Admitted(p) => {
                        prop_assert!(
                            !blocked(class.priority),
                            "zero-budget class {:?} was admitted", class.priority
                        );
                        admitted_images.push(image.clone());
                        pendings.push(p);
                    }
                    Admission::Shed(reason) => {
                        prop_assert_eq!(reason, ShedReason::ClassBudget);
                        prop_assert!(
                            blocked(class.priority),
                            "unbudgeted class {:?} shed", class.priority
                        );
                        expect_shed[class.priority.rank()] += 1;
                    }
                    Admission::DeadlineInfeasible { estimated_wait } => {
                        prop_assert!(
                            false,
                            "60 s deadline judged infeasible (wait {estimated_wait:?})"
                        );
                    }
                }
            }
            let got: Vec<Tensor> = pendings.into_iter().map(|p| p.wait().unwrap()).collect();
            tf.fleet.drain();

            // Survivors kept solo-identical coordinates: the admitted
            // subset IS a solo stream of the admitted images.
            let want = solo_logits(&backend, &admitted_images);
            prop_assert_eq!(
                &want, &got,
                "backend {:?}, {} shard(s), {:?}, lease {}, {:?}, mask {:#05b}: \
                 admitted subset diverged from solo",
                backend, n_shards, mix, lease, ordering, blocked_mask
            );

            // The router ledger saw every shed, each typed on its class.
            let stats = tf.fleet.stats();
            for p in Priority::ALL {
                prop_assert_eq!(
                    stats.router.class(p).shed_class_budget,
                    expect_shed[p.rank()],
                    "router shed ledger for {:?}", p
                );
            }
            prop_assert_eq!(
                stats.aggregate().qos.admitted_total(),
                admitted_images.len() as u64
            );
            tf.shutdown();
        }
    }
}

/// EDF reordering on the *solo* `Session::serve` handle must be inert:
/// that runner numbers the stream itself (dispatch order), so the facade
/// clamps the ordering to FIFO — and the logits stay bit-identical to a
/// solo stream even when the caller asked for EDF with adversarial
/// priorities (low first, high last).
#[test]
fn session_serve_clamps_edf_to_fifo() {
    let backend = noisy_backend();
    let images = random_images(6, 31);
    let want = solo_logits(&backend, &images);

    let mut session = platform().session();
    session.program(&backend).unwrap();
    let handle = session
        .serve(
            // Batches big enough that an unclamped EDF sort *would*
            // reorder dispatch across priorities.
            BatchPolicy::new(6, Duration::from_millis(20))
                .with_qos(QosPolicy::default().with_ordering(QosOrdering::EdfWithinPriority)),
        )
        .unwrap();
    let classes = [
        QosClass::low(),
        QosClass::low().with_deadline(Duration::from_secs(1)),
        QosClass::default(),
        QosClass::high(),
        QosClass::high().with_deadline(Duration::from_secs(1)),
        QosClass::default(),
    ];
    let pendings: Vec<Pending> = images
        .iter()
        .zip(classes)
        .map(|(x, class)| {
            handle
                .submit_qos(x.clone(), class)
                .unwrap()
                .admitted()
                .expect("permissive policy admits")
        })
        .collect();
    let got: Vec<Tensor> = pendings.into_iter().map(|p| p.wait().unwrap()).collect();
    handle.shutdown();
    assert_eq!(want, got, "EDF leaked into the self-numbering solo runner");
}

/// Per-class ledgers cross the wire: a remote shard's admission counters,
/// deadline misses, and latency samples come back through `Stats` frames
/// and pool into the fleet aggregate.
#[test]
fn remote_class_ledgers_cross_the_wire() {
    let backend = Backend::Golden;
    let images = random_images(6, 37);
    let platform = platform();
    let tf = build_fleet(
        &platform,
        1,
        Mix::AllTcp,
        FleetPolicy::default(),
        BatchPolicy::new(2, Duration::from_millis(1)),
        &backend,
    );
    for (i, image) in images.iter().enumerate() {
        let class = if i % 2 == 0 {
            QosClass::high()
        } else {
            // A deadline no inference meets: misses are *counted*, never
            // culled — the request still completes with logits.
            QosClass::low().with_deadline(Duration::from_nanos(1))
        };
        // Submit-then-wait: an empty pipeline estimates zero wait, so the
        // client-side feasibility check stays inert even for the 1 ns
        // deadline — what's under test is the *completion-side* ledger.
        tf.fleet
            .submit_qos(image.clone(), class)
            .unwrap()
            .admitted()
            .expect("permissive fleet admits")
            .wait()
            .unwrap();
    }
    tf.fleet.drain();
    let agg = tf.fleet.stats().aggregate();
    assert_eq!(agg.qos.class(Priority::High).admitted, 3);
    assert_eq!(agg.qos.class(Priority::Low).admitted, 3);
    assert_eq!(
        agg.qos.class(Priority::Low).deadline_misses,
        3,
        "1 ns deadlines all missed, counted over the wire"
    );
    assert_eq!(agg.qos.class(Priority::High).deadline_misses, 0);
    assert!(
        agg.qos.class(Priority::High).latencies.len() >= 3,
        "latency samples crossed the wire"
    );
    tf.shutdown();
}
