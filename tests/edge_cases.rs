//! Edge cases and failure injection across the stack.

use aimc_platform::core::{EdgeKind, StageRole};
use aimc_platform::prelude::*;

#[test]
fn minimal_head_network() {
    // Smallest interesting network: one conv feeding GAP + a wide FC whose
    // 2×4 split exercises both split dimensions.
    let mut b = GraphBuilder::new(Shape::new(3, 8, 8));
    let c = b.conv("c", b.input(), ConvCfg::k3(3, 512, 1));
    let gap = b.global_avgpool("gap", c);
    b.linear("fc", gap, 1000);
    let g = b.finish();
    let arch = ArchConfig::paper();
    let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
    let fc = m.stages.iter().find(|s| s.name == "fc").unwrap();
    let split = &fc.analog.as_ref().unwrap().split;
    assert_eq!((split.row_splits, split.col_splits), (2, 4));
    let r = simulate(&g, &m, &arch, 3).unwrap();
    assert_eq!(r.image_completions.len(), 3);
}

#[test]
fn single_conv_network_maps_and_runs() {
    let mut b = GraphBuilder::new(Shape::new(3, 16, 16));
    b.conv("only", b.input(), ConvCfg::k3(3, 8, 1));
    let g = b.finish();
    let arch = ArchConfig::small(4, 8);
    let m = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
    // Source + one analog stage (27 rows -> 1 IMA), no reductions.
    assert_eq!(m.stages.len(), 2);
    assert_eq!(m.compute_clusters(), 1);
    let r = simulate(&g, &m, &arch, 2).unwrap();
    assert_eq!(r.image_completions.len(), 2);
}

#[test]
fn batch_one_still_pipelines_chunks() {
    let g = resnet18(256, 256, 1000);
    let arch = ArchConfig::paper();
    let m = map_network(&g, &arch, MappingStrategy::OnChipResiduals).unwrap();
    let r = simulate(&g, &m, &arch, 1).unwrap();
    assert_eq!(r.image_completions.len(), 1);
    // A single image cannot saturate replicated lanes, but must still finish
    // well under the naive serial time (sum of all stage times ≈ several ms).
    assert!(
        r.makespan < SimTime::from_us(2000),
        "makespan {}",
        r.makespan
    );
}

#[test]
fn tiny_platform_rejects_big_networks_gracefully() {
    let g = resnet18(256, 256, 1000);
    let arch = ArchConfig::small(2, 2); // 4 clusters
    let err = map_network(&g, &arch, MappingStrategy::Naive).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("clusters"), "unhelpful error: {msg}");
}

#[test]
fn shrunken_l1_forces_finer_tiling_then_fails_cleanly() {
    let g = resnet18(256, 256, 1000);
    let mut arch = ArchConfig::paper();
    // 64 KiB L1: the mapper must refine tilings; many layers still fit
    // because tiles shrink to single columns.
    arch.cluster.l1_bytes = 64 * 1024;
    match map_network(&g, &arch, MappingStrategy::Naive) {
        Ok(m) => {
            // If it fits, tilings must be finer than the default somewhere.
            let max_chunks = m
                .stages
                .iter()
                .map(|s| s.tiling.chunks_per_image)
                .max()
                .unwrap();
            assert!(max_chunks > 16, "expected refined tiling, got {max_chunks}");
        }
        Err(e) => {
            assert!(matches!(e, aimc_platform::core::MapError::L1 { .. }), "{e}");
        }
    }
    // 4 KiB is hopeless and must error, not panic.
    arch.cluster.l1_bytes = 4 * 1024;
    assert!(map_network(&g, &arch, MappingStrategy::Naive).is_err());
}

#[test]
fn residual_roles_and_edges_are_classified() {
    let g = resnet18(256, 256, 1000);
    let arch = ArchConfig::paper();
    let m = map_network(&g, &arch, MappingStrategy::OnChipResiduals).unwrap();
    let mut skip_edges = 0;
    let mut analog_res = 0;
    for s in m.stages() {
        for e in &s.producers {
            if matches!(e.kind, EdgeKind::Skip { .. }) {
                skip_edges += 1;
                // Skip edges only enter residual-join stages.
                assert!(s.name.starts_with("res"), "skip edge into {}", s.name);
            }
        }
        if s.name.starts_with("res") && matches!(s.role, StageRole::Analog) {
            analog_res += 1;
        }
    }
    assert_eq!(skip_edges, 8);
    assert_eq!(analog_res, 3, "res10/16/22 carry projections");
}

#[test]
fn crossbar_noise_does_not_affect_timing() {
    // The timing simulator is independent of device noise: same mapping,
    // same makespan regardless of the functional noise configuration.
    let g = resnet18_cifar(10);
    let arch = ArchConfig::small(4, 16); // 64 clusters (CIFAR net needs 41)
    let mut arch_noisy = arch.clone();
    arch_noisy.cluster.ima.xbar.prog_noise_sigma = 0.3;
    arch_noisy.cluster.ima.xbar.read_noise_sigma = 0.3;
    let m1 = map_network(&g, &arch, MappingStrategy::Naive).unwrap();
    let m2 = map_network(&g, &arch_noisy, MappingStrategy::Naive).unwrap();
    let r1 = simulate(&g, &m1, &arch, 2).unwrap();
    let r2 = simulate(&g, &m2, &arch_noisy, 2).unwrap();
    assert_eq!(r1.makespan, r2.makespan);
}
