//! The sharded serving fleet's hard invariant, end-to-end through
//! `Platform::serve_fleet`: **fleet invariance** — for a fixed seed, the
//! logits of every request are bit-identical to a solo `Session::infer_one`
//! stream of the same images, for ANY shard count and ANY routing policy,
//! on both functional backends, and across fleet-wide
//! `apply_drift` / `reprogram` / `set_parallelism` transitions.
//!
//! The mechanism: the router owns the global arrival counter and stamps
//! every request with its global stream index; shards evaluate whatever
//! non-contiguous slice of the stream they were handed at those explicit
//! coordinates (`Executor::infer_batch_indexed`) on replicas programmed
//! from the same seed (identical conductances).

use aimc_platform::prelude::*;
use aimc_platform::serve::RoutePolicy;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn small_cnn() -> Graph {
    let mut b = GraphBuilder::new(Shape::new(3, 8, 8));
    let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 8, 1));
    let c1 = b.conv("c1", Some(c0), ConvCfg::k3(8, 8, 1));
    let r = b.residual("r", c1, c0, None);
    let p = b.global_avgpool("gap", r);
    b.linear("fc", p, 4);
    b.finish()
}

fn random_images(n: usize, seed: u64) -> Vec<Tensor> {
    let shape = Shape::new(3, 8, 8);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Tensor::from_vec(
                shape,
                (0..shape.numel())
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect(),
            )
        })
        .collect()
}

fn platform() -> Platform {
    Platform::builder()
        .graph(small_cnn())
        .arch(ArchConfig::small(8, 8))
        .he_weights(42)
        .build()
        .unwrap()
}

fn noisy_backend() -> Backend {
    // Real noise levels and small arrays: every MVM consumes randomness
    // and every layer splits across tiles — the hardest case for the
    // invariance.
    Backend::analog(7, XbarConfig::hermes_256().with_size(32, 4))
}

/// Solo reference: one `infer_one` per image, in stream order, on a fresh
/// single session.
fn solo_logits(backend: &Backend, images: &[Tensor]) -> Vec<Tensor> {
    let mut s = platform().session();
    images
        .iter()
        .map(|x| s.infer_one(x, backend.clone()).unwrap())
        .collect()
}

/// Fleet stream: submit every image in order through the router and wait
/// for all completions.
fn fleet_logits(fleet: &FleetHandle, images: &[Tensor]) -> Vec<Tensor> {
    let pendings: Vec<Pending> = images
        .iter()
        .map(|x| fleet.submit(x.clone()).unwrap())
        .collect();
    pendings.into_iter().map(|p| p.wait().unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random request streams × shard count × routing policy × backend:
    /// the fleet's logits are bit-identical to the solo stream, per image.
    #[test]
    fn fleet_stream_is_bit_identical_to_solo(
        seed in 0u64..1_000,
        n in 1usize..9,
        shard_idx in 0usize..4,
        route_idx in 0usize..2,
    ) {
        let n_shards = [1usize, 2, 3, 8][shard_idx];
        let route = [RoutePolicy::RoundRobin, RoutePolicy::LeastQueueDepth][route_idx];
        let images = random_images(n, seed);
        let policy = BatchPolicy::new(2, Duration::from_millis(1));
        let platform = platform();
        for backend in [Backend::Golden, noisy_backend()] {
            let want = solo_logits(&backend, &images);
            let fleet = platform.serve_fleet(n_shards, policy, route, &backend).unwrap();
            let got = fleet_logits(&fleet, &images);
            fleet.shutdown();
            prop_assert_eq!(
                &want, &got,
                "backend {:?}, {} shard(s), {:?} diverged",
                backend, n_shards, route
            );
        }
    }
}

/// The invariance survives fleet-wide drift and reprogramming: a fleet
/// taken through transitions between phases matches a solo session through
/// the same transitions — every replica drifts/reprograms at the same
/// global stream position (the fleet drains first), and reprogramming
/// rewinds the router's global counter exactly like a solo session's
/// executor counter.
#[test]
fn fleet_across_drift_and_reprogram_matches_solo() {
    let backend = noisy_backend();
    let images = random_images(6, 11);
    let (a, b) = images.split_at(3);

    // Solo reference through the same transition points.
    let mut solo = platform().session();
    let mut want: Vec<Tensor> = a
        .iter()
        .map(|x| solo.infer_one(x, backend.clone()).unwrap())
        .collect();
    solo.apply_drift(1000.0).unwrap();
    want.extend(
        b.iter()
            .map(|x| solo.infer_one(x, backend.clone()).unwrap()),
    );
    solo.reprogram(&backend).unwrap();
    want.extend(
        a.iter()
            .map(|x| solo.infer_one(x, backend.clone()).unwrap()),
    );

    // Fleet: three shards across all three phases.
    let fleet = platform()
        .serve_fleet(
            3,
            BatchPolicy::new(2, Duration::from_millis(1)),
            RoutePolicy::RoundRobin,
            &backend,
        )
        .unwrap();
    let mut got = fleet_logits(&fleet, a);
    assert!(fleet.apply_drift(1000.0), "analog replicas model drift");
    got.extend(fleet_logits(&fleet, b));
    fleet.reprogram().unwrap();
    assert_eq!(fleet.images_routed(), 0, "reprogram rewinds the stream");
    got.extend(fleet_logits(&fleet, a));
    fleet.shutdown();

    assert_eq!(want, got, "transitioned fleet stream diverged from solo");
    // Reprogramming rewinds the stream: image a[0] re-served after
    // reprogram replays coordinate 0 on freshly written replicas.
    assert_eq!(want[0], want[6], "reprogram did not rewind the stream");
}

/// `FleetHandle::set_parallelism` retunes every shard mid-serve
/// (snapshotted per batch) and never changes a bit of the results.
#[test]
fn set_parallelism_mid_fleet_serve_is_deterministic() {
    let backend = noisy_backend();
    let images = random_images(6, 13);
    let want = solo_logits(&backend, &images);

    let fleet = platform()
        .serve_fleet(
            2,
            BatchPolicy::new(3, Duration::from_millis(1)),
            RoutePolicy::LeastQueueDepth,
            &backend,
        )
        .unwrap();
    let mut got = Vec::new();
    for (phase, chunk) in images.chunks(2).enumerate() {
        fleet.set_parallelism(match phase % 3 {
            0 => Parallelism::Serial,
            1 => Parallelism::Threads(4),
            _ => Parallelism::Threads(2),
        });
        got.extend(fleet_logits(&fleet, chunk));
    }
    fleet.shutdown();
    assert_eq!(want, got, "thread-budget changes must never change logits");
}

/// Aggregated fleet statistics are coherent with the routed stream, and
/// `submit_block` slots into the same global numbering.
#[test]
fn fleet_stats_aggregate_matches_the_stream() {
    let backend = Backend::Golden;
    let images = random_images(9, 17);
    let want = solo_logits(&backend, &images);

    let platform = platform();
    let fleet = platform
        .serve_fleet(
            3,
            BatchPolicy::new(2, Duration::from_millis(1)),
            RoutePolicy::RoundRobin,
            &backend,
        )
        .unwrap();
    assert_eq!(fleet.shard_count(), 3);
    // Mix single submissions with a contiguous block: indices stay global
    // and unique, so results still match the solo stream image for image.
    let mut pendings: Vec<Pending> = images[..3]
        .iter()
        .map(|x| fleet.submit(x.clone()).unwrap())
        .collect();
    pendings.extend(fleet.submit_block(images[3..8].iter().cloned()).unwrap());
    pendings.push(fleet.submit(images[8].clone()).unwrap());
    let got: Vec<Tensor> = pendings.into_iter().map(|p| p.wait().unwrap()).collect();
    assert_eq!(want, got);

    fleet.drain();
    assert_eq!(fleet.images_routed(), 9);
    let stats = fleet.stats();
    assert_eq!(stats.shards.len(), 3);
    let per_shard: u64 = stats.shards.iter().map(|s| s.submitted).sum();
    let agg = stats.aggregate();
    assert_eq!(agg.submitted, per_shard);
    assert_eq!(agg.submitted, 9);
    assert_eq!(agg.completed, 9);
    assert_eq!(agg.dispatched, 9);
    assert_eq!(agg.queue_waits.len(), 9);
    assert!(agg.max_batch_observed <= 2);
    assert!(
        agg.batches >= 5,
        "9 requests at max_batch 2 need ≥5 batches"
    );

    fleet.shutdown();
    assert!(fleet.is_closed());
    assert!(matches!(
        fleet.submit(images[0].clone()),
        Err(ServeError::ShutDown)
    ));
    assert_eq!(fleet.stats().aggregate().rejected, 1);
}

/// A fleet without weights is a typed error, and a 0-shard request clamps
/// to one shard instead of panicking.
#[test]
fn fleet_error_paths_and_shard_clamp() {
    let no_weights = Platform::builder()
        .graph(small_cnn())
        .arch(ArchConfig::small(8, 8))
        .build()
        .unwrap();
    assert_eq!(
        no_weights
            .serve_fleet(
                2,
                BatchPolicy::default(),
                RoutePolicy::RoundRobin,
                &Backend::Golden,
            )
            .unwrap_err(),
        Error::NoWeights
    );

    let fleet = platform()
        .serve_fleet(
            0,
            BatchPolicy::new(1, Duration::from_millis(1)),
            RoutePolicy::RoundRobin,
            &Backend::Golden,
        )
        .unwrap();
    assert_eq!(fleet.shard_count(), 1);
    let images = random_images(2, 23);
    assert_eq!(
        fleet_logits(&fleet, &images),
        solo_logits(&Backend::Golden, &images)
    );
    fleet.shutdown();
}
