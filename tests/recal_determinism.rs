//! The heterogeneous-fleet registry and the background recalibration
//! rotation, end-to-end through `Platform::serve_hetero_fleet` /
//! `Platform::serve_fleet_with`: for a fixed per-model spec, every request
//! that completes returns logits bit-identical to a solo
//! `Session::infer_one` stream **of that request's model** — while the
//! fleet serves several model groups at once, a fleet-wide drift
//! transition lands mid-stream, and a replica is drained, reprogrammed
//! from its `ShardSpec` seed, and replayed through the drift log behind
//! the stream's back.
//!
//! The analog backends with real noise are the hard case on purpose:
//! noise is keyed by `(seed, coordinate)`, so a request routed to the
//! wrong model group, re-executed at a shifted coordinate, or served by a
//! recalibrated replica that missed a drift transition changes logits.
//! Bit-identity therefore proves the registry routes correctly, each
//! group's stream is hole-free, and a recalibration is invisible.

use aimc_platform::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::Duration;

fn small_cnn() -> Graph {
    let mut b = GraphBuilder::new(Shape::new(3, 8, 8));
    let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 8, 1));
    let c1 = b.conv("c1", Some(c0), ConvCfg::k3(8, 8, 1));
    let r = b.residual("r", c1, c0, None);
    let p = b.global_avgpool("gap", r);
    b.linear("fc", p, 4);
    b.finish()
}

fn random_images(n: usize, seed: u64) -> Vec<Tensor> {
    let shape = Shape::new(3, 8, 8);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Tensor::from_vec(
                shape,
                (0..shape.numel())
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect(),
            )
        })
        .collect()
}

fn platform() -> Platform {
    Platform::builder()
        .graph(small_cnn())
        .arch(ArchConfig::small(8, 8))
        .he_weights(42)
        .build()
        .unwrap()
}

fn batch() -> BatchPolicy {
    BatchPolicy::new(2, Duration::from_millis(1))
}

/// Two *different* analog recipes: distinct seeds, so a request routed to
/// the wrong group computes visibly different bits.
fn alpha_backend() -> Backend {
    Backend::analog(7, XbarConfig::hermes_256().with_size(32, 4))
}

fn beta_backend() -> Backend {
    Backend::analog(11, XbarConfig::hermes_256().with_size(32, 4))
}

/// Solo reference with a drift transition after `pre` images: the stream a
/// fleet group must reproduce bit-for-bit.
fn solo_logits_with_drift(
    backend: &Backend,
    images: &[Tensor],
    pre: usize,
    t_hours: f64,
) -> Vec<Tensor> {
    let mut s = platform().session();
    let mut out: Vec<Tensor> = images[..pre]
        .iter()
        .map(|x| s.infer_one(x, backend.clone()).unwrap())
        .collect();
    s.apply_drift(t_hours).unwrap();
    out.extend(
        images[pre..]
            .iter()
            .map(|x| s.infer_one(x, backend.clone()).unwrap()),
    );
    out
}

/// A fault-free [`Connect`]or over in-memory pipes: each dial spawns a
/// fresh `serve_stream` session against the shared server.
struct PipeConnector {
    server: Arc<ShardServer>,
}

impl Connect for PipeConnector {
    fn connect(&self) -> io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        let (client_end, server_end) = aimc_platform::wire::duplex();
        let server = Arc::clone(&self.server);
        std::thread::spawn(move || {
            let reader = server_end.clone();
            let writer = server_end.clone();
            let _ = server.serve_stream(reader, writer);
            server_end.close();
        });
        let reader = client_end.clone();
        let writer = client_end;
        Ok((Box::new(reader), Box::new(writer)))
    }
}

/// A wire-protocol shard for `model_id`: a real `ShardServer` (which
/// carries the model's [`ShardSpec`] and answers the router's spec probe)
/// behind a `TcpTransport` over in-memory pipes.
fn wire_shard(platform: &Platform, model_id: &str, backend: &Backend) -> Box<dyn ShardTransport> {
    let server = Arc::new(
        platform
            .shard_server_for(model_id, batch(), backend)
            .unwrap(),
    );
    Box::new(
        TcpTransport::with_connector(
            Box::new(PipeConnector { server }),
            RetryPolicy::new(2, Duration::from_millis(1)),
        )
        .expect("first dial of a pipe connector succeeds"),
    )
}

fn local_shard(platform: &Platform, model_id: &str, backend: &Backend) -> Box<dyn ShardTransport> {
    Box::new(
        platform
            .local_shard_for(model_id, batch(), backend)
            .unwrap(),
    )
}

/// One shard for `model_id`, placement picked by the mix: 0 = all local,
/// 1 = all wire, 2 = alternating by seat parity.
fn mixed_shard(
    platform: &Platform,
    model_id: &str,
    backend: &Backend,
    mix_idx: usize,
    seat: usize,
) -> Box<dyn ShardTransport> {
    let wire = match mix_idx {
        0 => false,
        1 => true,
        _ => seat % 2 == 1,
    };
    if wire {
        wire_shard(platform, model_id, backend)
    } else {
        local_shard(platform, model_id, backend)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random request streams × heterogeneous groups × mid-stream
    /// recalibration × transport mixes {local, wire, mixed} × lease length
    /// × routing policy: the completed logits of **each model** are
    /// bit-identical to a solo stream over that model's backend, and no
    /// group ever drops below its live floor — the registry and the
    /// rotation are invisible.
    #[test]
    fn hetero_fleet_recal_is_invisible_in_completed_logits(
        seed in 0u64..1_000,
        n in 4usize..8,
        mix_idx in 0usize..3,
        lease_idx in 0usize..3,
        route_idx in 0usize..2,
        recal_seat in 0usize..4,
        interleave in any::<bool>(),
    ) {
        let lease = [1u64, 4, 64][lease_idx];
        let route = [RoutePolicy::RoundRobin, RoutePolicy::LeastQueueDepth][route_idx];
        let policy = FleetPolicy::new(route).with_lease_len(lease);
        let platform = platform();
        let (alpha, beta) = (alpha_backend(), beta_backend());
        let a_images = random_images(n, seed);
        let b_images = random_images(n, seed ^ 0x5eed);
        let half = n / 2;
        let a_want = solo_logits_with_drift(&alpha, &a_images, half, 250.0);
        let b_want = solo_logits_with_drift(&beta, &b_images, half, 250.0);

        // Two groups × two seats: every seat has a routable same-group
        // peer, so any one of the four may rotate out.
        let transports: Vec<Box<dyn ShardTransport>> = vec![
            mixed_shard(&platform, "alpha", &alpha, mix_idx, 0),
            mixed_shard(&platform, "alpha", &alpha, mix_idx, 1),
            mixed_shard(&platform, "beta", &beta, mix_idx, 2),
            mixed_shard(&platform, "beta", &beta, mix_idx, 3),
        ];
        let fleet = platform.serve_fleet_with(transports, policy).unwrap();
        prop_assert_eq!(fleet.model_ids(), vec!["alpha".to_string(), "beta".to_string()]);

        let submit_half = |from: usize, to: usize| -> (Vec<Pending>, Vec<Pending>) {
            let mut a_pend = Vec::new();
            let mut b_pend = Vec::new();
            if interleave {
                for i in from..to {
                    a_pend.push(fleet.submit_to("alpha", a_images[i].clone()).unwrap());
                    b_pend.push(fleet.submit_to("beta", b_images[i].clone()).unwrap());
                }
            } else {
                for img in &a_images[from..to] {
                    a_pend.push(fleet.submit_to("alpha", img.clone()).unwrap());
                }
                for img in &b_images[from..to] {
                    b_pend.push(fleet.submit_to("beta", img.clone()).unwrap());
                }
            }
            (a_pend, b_pend)
        };

        // First half → fleet-wide drift (drains, so every submitted
        // request ran pre-drift, like the solo streams) → recalibrate one
        // seat (reprogram from spec seed + drift-log replay) → second half.
        let (mut a_pend, mut b_pend) = submit_half(0, half);
        prop_assert!(fleet.apply_drift(250.0));
        fleet.recalibrate_shard(recal_seat).unwrap();
        let health = fleet.shard_health();
        prop_assert!(
            health.iter().all(|h| h.live && !h.draining),
            "a rotation must return its seat: {health:?}"
        );
        prop_assert_eq!(health[recal_seat].drift_age, 0);
        prop_assert_eq!(health[recal_seat].recals, 1);
        let (a2, b2) = submit_half(half, n);
        a_pend.extend(a2);
        b_pend.extend(b2);

        fleet.drain();
        let a_got: Vec<Tensor> = a_pend.into_iter().map(|p| p.wait().unwrap()).collect();
        let b_got: Vec<Tensor> = b_pend.into_iter().map(|p| p.wait().unwrap()).collect();
        prop_assert_eq!(fleet.images_routed_for("alpha").unwrap(), n as u64);
        prop_assert_eq!(fleet.images_routed_for("beta").unwrap(), n as u64);
        fleet.shutdown();
        prop_assert_eq!(
            &a_want, &a_got,
            "alpha logits changed (mix {}, lease {}, {:?}, recal@{})",
            mix_idx, lease, route, recal_seat
        );
        prop_assert_eq!(
            &b_want, &b_got,
            "beta logits changed (mix {}, lease {}, {:?}, recal@{})",
            mix_idx, lease, route, recal_seat
        );
    }
}

/// The evict→rejoin round trip is invisible: a seat is gracefully removed
/// mid-stream, the stream keeps flowing on the survivor through a drift
/// transition, and the host rejoins via `add_shard` — programmed from its
/// spec seed and replayed through the recorded drift history. Every logit
/// stays bit-identical to solo, which it could not if the rejoiner's
/// conductances missed the drift or any coordinate moved.
#[test]
fn evict_then_rejoin_matches_solo() {
    let backend = alpha_backend();
    let images = random_images(9, 23);
    let want = solo_logits_with_drift(&backend, &images, 3, 500.0);
    let platform = platform();
    let fleet = platform
        .serve_fleet_with(
            vec![
                local_shard(&platform, "alpha", &backend),
                local_shard(&platform, "alpha", &backend),
            ],
            FleetPolicy::new(RoutePolicy::RoundRobin).with_lease_len(1),
        )
        .unwrap();

    let mut got: Vec<Tensor> = Vec::new();
    let wait_all = |pend: Vec<Pending>| -> Vec<Tensor> {
        pend.into_iter().map(|p| p.wait().unwrap()).collect()
    };
    got.extend(wait_all(
        images[..3]
            .iter()
            .map(|x| fleet.submit_to("alpha", x.clone()).unwrap())
            .collect(),
    ));
    assert!(fleet.apply_drift(500.0));
    fleet.remove_shard(0).unwrap();
    assert_eq!(fleet.live_shard_count(), 1, "seat 0 was drained out");
    got.extend(wait_all(
        images[3..6]
            .iter()
            .map(|x| fleet.submit_to("alpha", x.clone()).unwrap())
            .collect(),
    ));
    // The rejoiner: same spec (model id, config, seed), fresh host. The
    // router reprograms it and replays the drift log before routing to it.
    fleet
        .add_shard(local_shard(&platform, "alpha", &backend))
        .unwrap();
    assert_eq!(fleet.live_shard_count(), 2);
    got.extend(wait_all(
        images[6..]
            .iter()
            .map(|x| fleet.submit_to("alpha", x.clone()).unwrap())
            .collect(),
    ));
    fleet.shutdown();
    assert_eq!(want, got, "evict→rejoin changed a logit");
}

/// Maintenance guard rails at the facade level: removing a group's last
/// routable member is refused (`LiveFloor`), an out-of-range seat id is a
/// typed error, and a graceful removal is idempotent.
#[test]
fn remove_shard_guards_the_live_floor() {
    let platform = platform();
    let fleet = platform
        .serve_hetero_fleet(
            &[
                ModelGroup::new("alpha", 2, alpha_backend()),
                ModelGroup::new("beta", 1, Backend::Golden),
            ],
            batch(),
            RoutePolicy::RoundRobin,
        )
        .unwrap();
    assert_eq!(fleet.shard_count(), 3);

    // Beta's only seat may never leave; recalibration refuses it too.
    assert!(matches!(fleet.remove_shard(2), Err(ServeError::LiveFloor)));
    assert!(matches!(
        fleet.recalibrate_shard(2),
        Err(ServeError::LiveFloor)
    ));
    assert!(matches!(
        fleet.remove_shard(7),
        Err(ServeError::UnknownShard(7))
    ));

    // Alpha has a peer: seat 1 drains out gracefully, and removing an
    // already-removed seat is a no-op.
    fleet.remove_shard(1).unwrap();
    fleet.remove_shard(1).unwrap();
    assert_eq!(fleet.live_shard_count(), 2);
    // With its peer gone, alpha's survivor is now floor-protected.
    assert!(matches!(fleet.remove_shard(0), Err(ServeError::LiveFloor)));
    fleet.shutdown();
}

/// Merge semantics of the health counters in `FleetStats`: staleness
/// (`drift_age`) pools as a max — the fleet is as stale as its stalest
/// replica — while work (`reprograms`) pools as a sum, across a
/// local + wire transport mix.
#[test]
fn stats_pool_drift_age_and_recal_counters() {
    let platform = platform();
    let backend = alpha_backend();
    let fleet = platform
        .serve_fleet_with(
            vec![
                local_shard(&platform, "alpha", &backend),
                wire_shard(&platform, "alpha", &backend),
            ],
            FleetPolicy::default(),
        )
        .unwrap();
    assert!(fleet.apply_drift(100.0));
    assert!(fleet.apply_drift(100.0));
    fleet.recalibrate_shard(0).unwrap();

    let stats = fleet.stats();
    assert_eq!(stats.health, fleet.shard_health());
    let ages: Vec<u64> = stats.health.iter().map(|h| h.drift_age).collect();
    assert_eq!(ages, vec![0, 2], "recal resets seat 0; seat 1 keeps aging");
    let recals: Vec<u64> = stats.health.iter().map(|h| h.recals).collect();
    assert_eq!(recals, vec![1, 0]);
    // Per-shard rows carry the router's drift-age view (replay does not
    // re-age a freshly rotated seat), and the pooled row maxes staleness
    // while summing reprogram work.
    assert_eq!(stats.shards[0].drift_age, 0);
    assert_eq!(stats.shards[1].drift_age, 2);
    let agg = stats.aggregate();
    assert_eq!(agg.drift_age, 2);
    assert_eq!(agg.reprograms, 1);
    fleet.shutdown();
}

/// The background scheduler end-to-end: a fleet drifts, the worker (tiny
/// cadence) notices the aged seats and rotates them one at a time — never
/// both members of the group at once — and the logits served across the
/// rotations stay bit-identical to solo.
#[test]
fn background_scheduler_rotates_stale_seats() {
    let backend = alpha_backend();
    let images = random_images(6, 51);
    let want = solo_logits_with_drift(&backend, &images, 3, 250.0);
    let platform = platform();
    let fleet = platform
        .serve_fleet_with(
            vec![
                local_shard(&platform, "alpha", &backend),
                local_shard(&platform, "alpha", &backend),
            ],
            FleetPolicy::new(RoutePolicy::RoundRobin).with_lease_len(1),
        )
        .unwrap();

    let mut got: Vec<Tensor> = images[..3]
        .iter()
        .map(|x| fleet.submit(x.clone()).unwrap())
        .map(|p| p.wait().unwrap())
        .collect();
    assert!(fleet.apply_drift(250.0));

    // Both seats now carry drift_age 1 ≥ max_drift_age: the worker must
    // rotate both (stalest first, one at a time behind the live floor).
    let mut recal = fleet.start_recal(RecalPolicy::new(1).with_cadence(Duration::from_millis(2)));
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while fleet.shard_health().iter().any(|h| h.drift_age > 0) {
        assert!(
            std::time::Instant::now() < deadline,
            "scheduler never rotated the stale seats: {:?}",
            recal.stats()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    recal.stop();

    let stats = recal.stats();
    assert!(stats.scans >= 2, "one rotation per scan: {stats:?}");
    assert_eq!(stats.rotations, 2, "each seat rotated exactly once");
    assert_eq!(stats.failures, 0);
    assert!(stats.last_rotated.is_some());
    let health = fleet.shard_health();
    assert!(health.iter().all(|h| h.live && h.recals == 1), "{health:?}");

    got.extend(
        images[3..]
            .iter()
            .map(|x| fleet.submit(x.clone()).unwrap())
            .collect::<Vec<Pending>>()
            .into_iter()
            .map(|p| p.wait().unwrap()),
    );
    fleet.shutdown();
    assert_eq!(want, got, "a background rotation changed a logit");
}
