//! The parallel execution engine's hard invariant, checked end-to-end
//! through the `Platform`/`Session` API: **for the same seed, inference is
//! bit-identical no matter how many threads run** — for both functional
//! backends, across programming, tile-level and image-level parallelism,
//! and through state transitions (drift, re-programming, interleaved
//! single-image calls).

use aimc_platform::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_cnn() -> Graph {
    let mut b = GraphBuilder::new(Shape::new(3, 8, 8));
    let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 8, 1));
    let c1 = b.conv("c1", Some(c0), ConvCfg::k3(8, 8, 1));
    let r = b.residual("r", c1, c0, None);
    let p = b.global_avgpool("gap", r);
    b.linear("fc", p, 4);
    b.finish()
}

fn random_images(shape: Shape, n: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Tensor::from_vec(
                shape,
                (0..shape.numel())
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect(),
            )
        })
        .collect()
}

/// A session over the small CNN with the given thread budget. The small
/// crossbars (32×4) force multiple tiles per layer, so tile-level
/// parallelism is exercised, not just image-level.
fn session_with(par: Parallelism) -> Session {
    Platform::builder()
        .graph(small_cnn())
        .arch(ArchConfig::small(8, 8))
        .he_weights(42)
        .parallelism(par)
        .build()
        .unwrap()
        .session()
}

fn noisy_backend() -> Backend {
    // Real noise levels and small arrays: the hardest case for determinism
    // (every MVM consumes randomness; every layer splits across tiles).
    Backend::analog(7, XbarConfig::hermes_256().with_size(32, 4))
}

#[test]
fn golden_backend_is_parallelism_invariant() {
    let images = random_images(Shape::new(3, 8, 8), 6, 1);
    let mut serial = session_with(Parallelism::Serial);
    let want = serial.infer(&images, Backend::Golden).unwrap();
    for n in [2, 4] {
        let mut s = session_with(Parallelism::Threads(n));
        let got = s.infer(&images, Backend::Golden).unwrap();
        assert_eq!(want, got, "golden diverged at {n} threads");
    }
}

#[test]
fn analog_backend_is_parallelism_invariant() {
    let images = random_images(Shape::new(3, 8, 8), 6, 2);
    let mut serial = session_with(Parallelism::Serial);
    let want = serial.infer(&images, noisy_backend()).unwrap();
    for n in [2, 4] {
        let mut s = session_with(Parallelism::Threads(n));
        let got = s.infer(&images, noisy_backend()).unwrap();
        assert_eq!(want, got, "analog diverged at {n} threads");
        // Concurrent evaluation must not lose or duplicate MVM counts.
        assert_eq!(serial.total_mvms(), s.total_mvms());
        assert_eq!(serial.tile_count(), s.tile_count());
    }
}

#[test]
fn single_image_tile_parallelism_is_invariant() {
    let images = random_images(Shape::new(3, 8, 8), 1, 3);
    let mut serial = session_with(Parallelism::Serial);
    let want = serial.infer_one(&images[0], noisy_backend()).unwrap();
    let mut s = session_with(Parallelism::Threads(4));
    let got = s.infer_one(&images[0], noisy_backend()).unwrap();
    assert_eq!(want, got);
}

#[test]
fn batch_matches_repeated_single_infers() {
    // One batched call and an image-by-image loop claim the same invocation
    // coordinates, so retained crossbars give identical noise either way.
    let images = random_images(Shape::new(3, 8, 8), 4, 4);
    let mut a = session_with(Parallelism::Threads(4));
    let batched = a.infer(&images, noisy_backend()).unwrap();
    let mut b = session_with(Parallelism::Serial);
    let looped: Vec<Tensor> = images
        .iter()
        .map(|x| b.infer_one(x, noisy_backend()).unwrap())
        .collect();
    assert_eq!(batched, looped);
}

#[test]
fn drift_then_parallel_reinfer_matches_serial() {
    // The regression the satellite task calls out: apply_drift mutates the
    // retained conductances; a parallel re-infer afterwards must still
    // match a serial session that went through the same transitions.
    let images = random_images(Shape::new(3, 8, 8), 4, 5);
    let run = |par: Parallelism| {
        let mut s = session_with(par);
        let fresh = s.infer(&images, noisy_backend()).unwrap();
        s.apply_drift(1000.0).unwrap();
        let drifted = s.infer(&images, noisy_backend()).unwrap();
        (fresh, drifted)
    };
    let (fresh_serial, drifted_serial) = run(Parallelism::Serial);
    let (fresh_par, drifted_par) = run(Parallelism::Threads(4));
    assert_eq!(fresh_serial, fresh_par);
    assert_eq!(drifted_serial, drifted_par, "post-drift inference diverged");
    // Drift must actually have changed something, or the test is vacuous.
    assert_ne!(fresh_serial, drifted_serial);
}

#[test]
fn reprogram_resets_invocation_coordinates_identically() {
    let images = random_images(Shape::new(3, 8, 8), 2, 6);
    let run = |par: Parallelism| {
        let mut s = session_with(par);
        let backend = noisy_backend();
        let first = s.infer(&images, backend.clone()).unwrap();
        s.reprogram(&backend).unwrap();
        let second = s.infer(&images, backend).unwrap();
        (first, second)
    };
    let serial = run(Parallelism::Serial);
    let par = run(Parallelism::Threads(4));
    assert_eq!(serial, par);
    // Freshly written crossbars replay the same streams from zero.
    assert_eq!(serial.0, serial.1);
}

#[test]
fn session_parallelism_knob_is_inherited_and_overridable() {
    let mut s = session_with(Parallelism::Threads(3));
    assert_eq!(s.parallelism(), Parallelism::Threads(3));
    assert_eq!(s.platform().parallelism(), Parallelism::Threads(3));
    s.set_parallelism(Parallelism::Serial);
    assert_eq!(s.parallelism(), Parallelism::Serial);
    // Override applies to later infers without changing results.
    let images = random_images(Shape::new(3, 8, 8), 2, 7);
    let a = s.infer(&images, noisy_backend()).unwrap();
    let mut reference = session_with(Parallelism::Serial);
    let b = reference.infer(&images, noisy_backend()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn interleaved_golden_checks_do_not_perturb_analog_streams() {
    // Golden reference checks between analog batches must not consume
    // analog randomness, in any parallelism mode.
    let images = random_images(Shape::new(3, 8, 8), 2, 8);
    let run = |par: Parallelism| {
        let mut s = session_with(par);
        let a1 = s.infer(&images, noisy_backend()).unwrap();
        let _ = s.infer(&images, Backend::Golden).unwrap();
        let a2 = s.infer(&images, noisy_backend()).unwrap();
        (a1, a2)
    };
    assert_eq!(run(Parallelism::Serial), run(Parallelism::Threads(4)));
}
