//! Round-trip tests of the `Platform`/`Session` API against the legacy
//! free-function wiring, plus its error paths and the crossbar-retention
//! contract.

use aimc_platform::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_cnn() -> Graph {
    let mut b = GraphBuilder::new(Shape::new(3, 16, 16));
    let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 8, 1));
    let c1 = b.conv("c1", Some(c0), ConvCfg::k3(8, 8, 1));
    let r = b.residual("r", c1, c0, None);
    let gap = b.global_avgpool("gap", r);
    b.linear("fc", gap, 4);
    b.finish()
}

fn random_image(shape: Shape, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::from_vec(
        shape,
        (0..shape.numel())
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect(),
    )
}

fn small_platform() -> Platform {
    Platform::builder()
        .graph(small_cnn())
        .arch(ArchConfig::small(4, 8))
        .strategy(MappingStrategy::OnChipResiduals)
        .he_weights(11)
        .build()
        .expect("small CNN maps onto 32 clusters")
}

// ---------------------------------------------------------------------------
// Round-trip parity with the legacy free-function path
// ---------------------------------------------------------------------------

#[test]
fn session_run_matches_legacy_simulate_totals() {
    let platform = small_platform();
    let mut session = platform.session();
    let new = session.run(RunSpec::batch(4)).unwrap().clone();

    // Legacy path: hand-wired map_network + simulate.
    let g = small_cnn();
    let arch = ArchConfig::small(4, 8);
    let m = map_network(&g, &arch, MappingStrategy::OnChipResiduals).unwrap();
    let old = simulate(&g, &m, &arch, 4).unwrap();

    assert_eq!(new.batch, old.batch);
    assert_eq!(new.makespan, old.makespan);
    assert_eq!(new.nominal_ops, old.nominal_ops);
    assert_eq!(new.useful_ops, old.useful_ops);
    assert_eq!(new.executed_ops, old.executed_ops);
    assert_eq!(new.image_completions, old.image_completions);
    assert_eq!(new.hbm_bytes, old.hbm_bytes);
}

#[test]
fn session_infer_golden_matches_legacy_logits() {
    let g = small_cnn();
    let w = he_init(&g, 11);
    let platform = Platform::builder()
        .graph(g.clone())
        .arch(ArchConfig::small(4, 8))
        .weights(w.clone())
        .build()
        .unwrap();
    let mut session = platform.session();
    let images: Vec<Tensor> = (0..4)
        .map(|i| random_image(g.input_shape(), 50 + i))
        .collect();
    let new = session.infer(&images, Backend::Golden).unwrap();
    for (x, y) in images.iter().zip(&new) {
        assert_eq!(
            y,
            &infer_golden(&g, &w, x),
            "golden logits must be identical"
        );
    }
}

#[test]
fn session_infer_analog_matches_legacy_executor() {
    let g = small_cnn();
    let w = he_init(&g, 11);
    let platform = Platform::builder()
        .graph(g.clone())
        .arch(ArchConfig::small(4, 8))
        .weights(w.clone())
        .build()
        .unwrap();
    let mut session = platform.session();
    let x = random_image(g.input_shape(), 3);
    let cfg = XbarConfig::hermes_256();
    let new = session
        .infer_one(&x, Backend::analog(9, cfg.clone()))
        .unwrap();
    // Legacy path with the same seed sees the identical noise stream.
    let legacy = AimcExecutor::program(&g, &w, &cfg, 9).unwrap();
    assert_eq!(new, legacy.infer(&x));
}

#[test]
fn headline_matches_legacy_composition() {
    let platform = small_platform();
    let mut session = platform.session();
    session.run(RunSpec::batch(4)).unwrap();
    let energy = EnergyModel::default();
    let area = AreaModel::default();
    let new = session.headline(&energy, &area).unwrap();

    let g = small_cnn();
    let arch = ArchConfig::small(4, 8);
    let m = map_network(&g, &arch, MappingStrategy::OnChipResiduals).unwrap();
    let r = simulate(&g, &m, &arch, 4).unwrap();
    let old = Headline::compute(&m, &arch, &r, &energy, &area);
    assert_eq!(new, old);
}

// ---------------------------------------------------------------------------
// Error paths: Err values where the legacy path panicked
// ---------------------------------------------------------------------------

#[test]
fn missing_weights_is_err_not_panic() {
    let platform = Platform::builder()
        .graph(small_cnn())
        .arch(ArchConfig::small(4, 8))
        .build()
        .unwrap(); // no weights supplied
    let mut session = platform.session();
    let x = Tensor::zeros(Shape::new(3, 16, 16));
    assert_eq!(
        session.infer_one(&x, Backend::Golden),
        Err(Error::NoWeights)
    );
    assert_eq!(
        session.infer_one(&x, Backend::analog(1, XbarConfig::hermes_256())),
        Err(Error::NoWeights)
    );
}

#[test]
fn shape_mismatch_is_err_not_panic() {
    let mut session = small_platform().session();
    let wrong = Tensor::zeros(Shape::new(3, 8, 8));
    for backend in [
        Backend::Golden,
        Backend::analog(1, XbarConfig::ideal(64, 64)),
    ] {
        match session.infer_one(&wrong, backend) {
            Err(Error::Exec(ExecError::ShapeMismatch { expected, got })) => {
                assert_eq!(expected, Shape::new(3, 16, 16));
                assert_eq!(got, Shape::new(3, 8, 8));
            }
            other => panic!("expected shape mismatch, got {other:?}"),
        }
    }
}

#[test]
fn oversized_workload_is_map_err_not_panic() {
    // ResNet-18 at paper scale cannot fit 8 clusters.
    let result = Platform::builder()
        .graph(resnet18(256, 256, 1000))
        .arch(ArchConfig::small(2, 4))
        .build();
    match result {
        Err(Error::Map(MapError::OutOfClusters { needed, available })) => {
            assert!(needed > available);
        }
        other => panic!("expected OutOfClusters, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn run_paper_style_error_chain_formats() {
    // The unified error renders each layer's message.
    let e = Error::Map(MapError::Unsupported("lstm".into()));
    assert!(e.to_string().contains("unsupported operator"));
    let e = Error::NoWeights;
    assert!(e.to_string().contains("he_weights"));
}

// ---------------------------------------------------------------------------
// Crossbar retention across infer calls
// ---------------------------------------------------------------------------

#[test]
fn consecutive_infer_calls_reuse_programmed_crossbars() {
    let mut session = small_platform().session();
    let x = random_image(Shape::new(3, 16, 16), 21);
    // Ideal arrays: no noise, so identical outputs are only possible if the
    // conductances are bit-identical — i.e. the same programmed tiles.
    let backend = Backend::analog(5, XbarConfig::ideal(256, 256));
    let first = session.infer_one(&x, backend.clone()).unwrap();
    assert_eq!(session.programming_count(), 1);
    let mvms_after_first = session.total_mvms();
    assert!(mvms_after_first > 0);

    let second = session.infer_one(&x, backend.clone()).unwrap();
    assert_eq!(first, second, "same tiles + no noise => identical logits");
    assert_eq!(
        session.programming_count(),
        1,
        "second infer must not re-program"
    );
    assert_eq!(
        session.total_mvms(),
        2 * mvms_after_first,
        "the same executor kept accumulating MVMs"
    );
    assert_eq!(session.programmed_backend(), Some(&backend));
}

#[test]
fn golden_checks_do_not_discard_programmed_crossbars() {
    // The golden and analog slots are independent: interleaving a golden
    // reference check must not re-write (and thereby reset) the arrays.
    let mut session = small_platform().session();
    let x = random_image(Shape::new(3, 16, 16), 2);
    let analog = Backend::analog(5, XbarConfig::ideal(128, 128));
    let first = session.infer_one(&x, analog.clone()).unwrap();
    assert_eq!(session.programming_count(), 1);
    let tiles = session.tile_count();
    assert!(tiles > 0);

    session.infer_one(&x, Backend::Golden).unwrap();
    assert_eq!(
        session.programming_count(),
        1,
        "golden check must not re-write crossbars"
    );
    assert_eq!(session.tile_count(), tiles, "analog tiles retained");

    let third = session.infer_one(&x, analog.clone()).unwrap();
    assert_eq!(session.programming_count(), 1, "same arrays, no re-program");
    assert_eq!(first, third);

    // A *different* analog backend does re-write the arrays...
    session
        .infer_one(&x, Backend::analog(6, XbarConfig::ideal(128, 128)))
        .unwrap();
    assert_eq!(session.programming_count(), 2);
    // ...and reprogram() forces a fresh write of the same backend.
    session.reprogram(&analog).unwrap();
    assert_eq!(session.programming_count(), 3);
}

#[test]
fn drift_survives_interleaved_golden_checks() {
    let mut session = small_platform().session();
    let x = random_image(Shape::new(3, 16, 16), 4);
    // Noiseless arrays (deterministic outputs) but with the real PCM drift
    // exponent, so apply_drift visibly decays the conductances.
    let mut cfg = XbarConfig::ideal(128, 128);
    cfg.drift_nu = XbarConfig::hermes_256().drift_nu;
    let analog = Backend::analog(5, cfg);
    let fresh = session.infer_one(&x, analog.clone()).unwrap();
    session.apply_drift(24.0 * 365.0).unwrap();
    let drifted = session.infer_one(&x, analog.clone()).unwrap();
    assert_ne!(fresh, drifted, "a year of drift must decay the outputs");

    // Golden check in between must not silently restore fresh conductances.
    session.infer_one(&x, Backend::Golden).unwrap();
    let after_golden = session.infer_one(&x, analog).unwrap();
    assert_eq!(
        drifted, after_golden,
        "drifted arrays retained across golden check"
    );
}

#[test]
fn batch_infer_programs_once() {
    let mut session = small_platform().session();
    let images: Vec<Tensor> = (0..6)
        .map(|i| random_image(Shape::new(3, 16, 16), 100 + i))
        .collect();
    let outs = session
        .infer(&images, Backend::analog(1, XbarConfig::hermes_256()))
        .unwrap();
    assert_eq!(outs.len(), 6);
    assert_eq!(session.programming_count(), 1);
}
