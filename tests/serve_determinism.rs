//! The serving layer's hard invariant, end-to-end through
//! `Session::serve`: **batch-composition invariance** — for a fixed seed,
//! the logits of every request are bit-identical to a solo
//! `Session::infer_one` stream of the same images, no matter how the
//! micro-batch scheduler chopped the request stream (any `max_batch`, any
//! arrival jitter), for both functional backends, and across
//! `apply_drift` / `reprogram` / `set_parallelism` transitions.

use aimc_platform::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn small_cnn() -> Graph {
    let mut b = GraphBuilder::new(Shape::new(3, 8, 8));
    let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 8, 1));
    let c1 = b.conv("c1", Some(c0), ConvCfg::k3(8, 8, 1));
    let r = b.residual("r", c1, c0, None);
    let p = b.global_avgpool("gap", r);
    b.linear("fc", p, 4);
    b.finish()
}

fn random_images(n: usize, seed: u64) -> Vec<Tensor> {
    let shape = Shape::new(3, 8, 8);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Tensor::from_vec(
                shape,
                (0..shape.numel())
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect(),
            )
        })
        .collect()
}

fn session() -> Session {
    Platform::builder()
        .graph(small_cnn())
        .arch(ArchConfig::small(8, 8))
        .he_weights(42)
        .build()
        .unwrap()
        .session()
}

fn noisy_backend() -> Backend {
    // Real noise levels and small arrays: every MVM consumes randomness
    // and every layer splits across tiles — the hardest case for the
    // invariance.
    Backend::analog(7, XbarConfig::hermes_256().with_size(32, 4))
}

/// Solo reference: one `infer_one` per image, in stream order.
fn solo_logits(backend: &Backend, images: &[Tensor]) -> Vec<Tensor> {
    let mut s = session();
    images
        .iter()
        .map(|x| s.infer_one(x, backend.clone()).unwrap())
        .collect()
}

/// Served stream: submit every image in order (with optional inter-arrival
/// jitter) through one `ServeHandle` and wait for all completions.
fn served_logits(
    session: &mut Session,
    backend: &Backend,
    policy: BatchPolicy,
    images: &[Tensor],
    jitter: Duration,
) -> Vec<Tensor> {
    session.program(backend).unwrap();
    let handle = session.serve(policy).unwrap();
    let pendings: Vec<Pending> = images
        .iter()
        .map(|x| {
            if !jitter.is_zero() {
                std::thread::sleep(jitter);
            }
            handle.submit(x.clone()).unwrap()
        })
        .collect();
    let logits: Vec<Tensor> = pendings.into_iter().map(|p| p.wait().unwrap()).collect();
    handle.shutdown();
    logits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random request streams, arrival jitters, and batch bounds: the
    /// served logits are bit-identical to the solo stream, per image, for
    /// both backends.
    #[test]
    fn served_stream_is_bit_identical_to_solo(
        seed in 0u64..1_000,
        n in 1usize..8,
        mb_idx in 0usize..4,
        jitter_us in 0u64..400,
    ) {
        let max_batch = [1usize, 2, 3, 16][mb_idx];
        let images = random_images(n, seed);
        let policy = BatchPolicy::new(max_batch, Duration::from_millis(1));
        let jitter = Duration::from_micros(jitter_us);
        for backend in [Backend::Golden, noisy_backend()] {
            let want = solo_logits(&backend, &images);
            let mut s = session();
            let got = served_logits(&mut s, &backend, policy, &images, jitter);
            prop_assert_eq!(
                &want, &got,
                "backend {:?}, max_batch {}, jitter {:?} diverged",
                backend, max_batch, jitter
            );
        }
    }
}

/// The invariance survives drift and reprogramming: a served stream with
/// transitions between phases matches a solo stream through the same
/// transitions — the executor's image-coordinate counter (untouched by
/// drift, reset by reprogramming) is the shared stream authority.
#[test]
fn serving_across_drift_and_reprogram_matches_solo() {
    let backend = noisy_backend();
    let images = random_images(6, 11);
    let (a, b) = images.split_at(3);

    // Solo reference through the same transition points.
    let mut solo = session();
    let mut want: Vec<Tensor> = a
        .iter()
        .map(|x| solo.infer_one(x, backend.clone()).unwrap())
        .collect();
    solo.apply_drift(1000.0).unwrap();
    let mut post_drift: Vec<Tensor> = b
        .iter()
        .map(|x| solo.infer_one(x, backend.clone()).unwrap())
        .collect();
    want.append(&mut post_drift);
    solo.reprogram(&backend).unwrap();
    let mut post_reprogram: Vec<Tensor> = a
        .iter()
        .map(|x| solo.infer_one(x, backend.clone()).unwrap())
        .collect();
    want.append(&mut post_reprogram);

    // Served stream: one handle across all three phases.
    let mut s = session();
    s.program(&backend).unwrap();
    let handle = s
        .serve(BatchPolicy::new(2, Duration::from_millis(1)))
        .unwrap();
    let mut got = Vec::new();
    let pendings: Vec<Pending> = a
        .iter()
        .map(|x| handle.submit(x.clone()).unwrap())
        .collect();
    got.extend(pendings.into_iter().map(|p| p.wait().unwrap()));
    handle.drain();
    s.apply_drift(1000.0).unwrap();
    let pendings: Vec<Pending> = b
        .iter()
        .map(|x| handle.submit(x.clone()).unwrap())
        .collect();
    got.extend(pendings.into_iter().map(|p| p.wait().unwrap()));
    handle.drain();
    s.reprogram(&backend).unwrap();
    assert_eq!(s.images_seen(), 0, "reprogram resets the image stream");
    let pendings: Vec<Pending> = a
        .iter()
        .map(|x| handle.submit(x.clone()).unwrap())
        .collect();
    got.extend(pendings.into_iter().map(|p| p.wait().unwrap()));
    handle.shutdown();

    assert_eq!(want, got, "transitioned served stream diverged from solo");
    // Reprogramming rewinds the stream: image a[0] re-served after
    // reprogram replays coordinate 0 on freshly written crossbars, so it
    // must reproduce its first-phase logits exactly.
    assert_eq!(want[0], want[6], "reprogram did not rewind the stream");
}

/// `set_parallelism` reaches in-flight handles (shared knob, snapshotted
/// per batch) and never changes a bit of the results.
#[test]
fn set_parallelism_mid_serve_is_deterministic() {
    let backend = noisy_backend();
    let images = random_images(6, 13);
    let want = solo_logits(&backend, &images);

    let mut s = session();
    s.program(&backend).unwrap();
    let handle = s
        .serve(BatchPolicy::new(3, Duration::from_millis(1)))
        .unwrap();
    let mut got = Vec::new();
    for (phase, chunk) in images.chunks(2).enumerate() {
        // Flip the shared knob between phases while the handle is live.
        s.set_parallelism(match phase % 3 {
            0 => Parallelism::Serial,
            1 => Parallelism::Threads(4),
            _ => Parallelism::Threads(2),
        });
        let pendings: Vec<Pending> = chunk
            .iter()
            .map(|x| handle.submit(x.clone()).unwrap())
            .collect();
        got.extend(pendings.into_iter().map(|p| p.wait().unwrap()));
    }
    handle.shutdown();
    assert_eq!(want, got, "thread-budget changes must never change logits");
    assert_eq!(s.images_seen(), images.len() as u64);
}

/// Serving the golden backend works and stays consistent when an analog
/// backend is programmed afterwards (slots are independent).
#[test]
fn golden_handle_survives_analog_programming() {
    let images = random_images(3, 17);
    let want = solo_logits(&Backend::Golden, &images);

    let mut s = session();
    s.program(&Backend::Golden).unwrap();
    let golden_handle = s
        .serve(BatchPolicy::new(2, Duration::from_millis(1)))
        .unwrap();
    // Programming analog must not disturb the live golden handle.
    s.program(&noisy_backend()).unwrap();
    let analog_handle = s
        .serve(BatchPolicy::new(2, Duration::from_millis(1)))
        .unwrap();

    let golden: Vec<Tensor> = images
        .iter()
        .map(|x| golden_handle.submit(x.clone()).unwrap())
        .collect::<Vec<Pending>>()
        .into_iter()
        .map(|p| p.wait().unwrap())
        .collect();
    let analog: Vec<Tensor> = images
        .iter()
        .map(|x| analog_handle.submit(x.clone()).unwrap())
        .collect::<Vec<Pending>>()
        .into_iter()
        .map(|p| p.wait().unwrap())
        .collect();
    golden_handle.shutdown();
    analog_handle.shutdown();

    assert_eq!(want, golden);
    assert_eq!(solo_logits(&noisy_backend(), &images), analog);
}

/// `Session::serve` without a programmed backend is a typed error, and
/// serve stats reflect the dispatched stream.
#[test]
fn serve_requires_a_programmed_backend_and_reports_stats() {
    let mut s = session();
    assert_eq!(
        s.serve(BatchPolicy::default()).unwrap_err(),
        Error::NoBackend
    );

    let images = random_images(5, 19);
    s.program(&Backend::Golden).unwrap();
    let handle = s
        .serve(BatchPolicy::new(2, Duration::from_millis(1)))
        .unwrap();
    let pendings: Vec<Pending> = images
        .iter()
        .map(|x| handle.submit(x.clone()).unwrap())
        .collect();
    for p in pendings {
        p.wait().unwrap();
    }
    handle.shutdown();
    let stats = handle.stats();
    assert_eq!(stats.submitted, 5);
    assert_eq!(stats.completed, 5);
    assert!(
        stats.batches >= 3,
        "max_batch 2 needs ≥3 batches for 5 images"
    );
    assert!(stats.max_batch_observed <= 2);
    assert_eq!(stats.queue_waits.len(), 5);
}
