//! The unified platform error type.
//!
//! Every fallible path of the [`Platform`](crate::Platform) /
//! [`Session`](crate::Session) API funnels into [`Error`], so callers write
//! one `?` chain across compilation (mapping), programming (crossbars) and
//! execution (functional backends) instead of juggling per-crate error
//! enums or catching panics.

use aimc_core::MapError;
use aimc_dnn::ExecError;
use aimc_runtime::SimError;
use aimc_xbar::XbarError;
use core::fmt;

/// Any failure raised by the `aimc-platform` facade.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The platform builder was missing a required ingredient.
    Builder(BuildError),
    /// The mapping compiler rejected the workload/platform pair.
    Map(MapError),
    /// Crossbar programming or evaluation failed.
    Xbar(XbarError),
    /// A functional executor rejected its inputs (shape/weight errors).
    Exec(ExecError),
    /// The timing simulator rejected the run request.
    Sim(SimError),
    /// The run specification is invalid (e.g. a zero batch).
    InvalidRunSpec(String),
    /// An operation needed functional weights, but the platform has none.
    NoWeights,
    /// An operation needed a programmed analog backend, but none is
    /// programmed.
    NoAnalogBackend,
    /// An operation needed *some* programmed functional backend (golden or
    /// analog), but none is programmed yet.
    NoBackend,
    /// A serving fleet was assembled with zero shard transports — there is
    /// nowhere to route.
    NoShards,
    /// Two shards claimed the same model id with different replica specs
    /// (crossbar config, noise model, or seed) — the fleet registry cannot
    /// route to them interchangeably without breaking bit-identity.
    SpecMismatch(String),
}

/// What was missing from a [`PlatformBuilder`](crate::PlatformBuilder).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildError {
    /// No workload graph was supplied.
    MissingGraph,
    /// No architecture configuration was supplied.
    MissingArch,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Builder(e) => write!(f, "platform build: {e}"),
            Error::Map(e) => write!(f, "mapping: {e}"),
            Error::Xbar(e) => write!(f, "crossbar: {e}"),
            Error::Exec(e) => write!(f, "execution: {e}"),
            Error::Sim(e) => write!(f, "timing simulation: {e}"),
            Error::InvalidRunSpec(s) => write!(f, "invalid run spec: {s}"),
            Error::NoWeights => write!(
                f,
                "no weights on this platform: supply .weights(...) or .he_weights(seed) \
                 to Platform::builder() before calling Session::infer"
            ),
            Error::NoAnalogBackend => write!(
                f,
                "no analog backend programmed: run Session::infer or Session::program \
                 with Backend::Analog first"
            ),
            Error::NoBackend => write!(
                f,
                "no functional backend programmed: run Session::program (or an infer) \
                 with the backend to serve before calling Session::serve"
            ),
            Error::NoShards => write!(
                f,
                "a serving fleet needs at least one shard transport: pass a non-empty \
                 transport vector to Platform::serve_fleet_with (or n_shards >= 1 to \
                 Platform::serve_fleet)"
            ),
            Error::SpecMismatch(why) => write!(f, "shard spec mismatch: {why}"),
        }
    }
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::MissingGraph => write!(f, "Platform::builder() needs .graph(...)"),
            BuildError::MissingArch => write!(f, "Platform::builder() needs .arch(...)"),
        }
    }
}

impl std::error::Error for Error {}

impl From<MapError> for Error {
    fn from(e: MapError) -> Self {
        Error::Map(e)
    }
}

impl From<XbarError> for Error {
    fn from(e: XbarError) -> Self {
        Error::Xbar(e)
    }
}

impl From<ExecError> for Error {
    fn from(e: ExecError) -> Self {
        // Lift nested crossbar failures to the top-level variant so callers
        // can match one place regardless of which layer raised them.
        match e {
            ExecError::Xbar(x) => Error::Xbar(x),
            other => Error::Exec(other),
        }
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Self {
        Error::Sim(e)
    }
}

impl From<BuildError> for Error {
    fn from(e: BuildError) -> Self {
        Error::Builder(e)
    }
}
