//! # aimc-platform — end-to-end DNN inference on a massively parallel
//! analog in-memory computing architecture
//!
//! Facade crate re-exporting the whole stack, reproduced from the DATE 2023
//! paper *"End-to-End DNN Inference on a Massively Parallel Analog In
//! Memory Computing Architecture"* (Bruschi et al.):
//!
//! | layer | crate | contents |
//! |-------|-------|----------|
//! | simulation kernel | [`sim`] | event queue, simulated time, activity stats |
//! | analog device | [`xbar`] | PCM crossbar: noise, converters, MVM timing/energy |
//! | workloads | [`dnn`] | tensors, graphs, ResNet-18, golden + analog executors |
//! | interconnect | [`noc`] | quadrant-tree AXI network + HBM controller |
//! | cluster | [`cluster`] | IMA subsystem, digital kernels, L1, DMA |
//! | **mapping compiler** | [`core`] | splits, reduction trees, tiling, replication, residual placement |
//! | runtime | [`runtime`] | self-timed pipelined simulation + analyses |
//!
//! ## Quickstart
//! ```no_run
//! use aimc_platform::prelude::*;
//!
//! let graph = resnet18(256, 256, 1000);
//! let arch = ArchConfig::paper();
//! let mapping = map_network(&graph, &arch, MappingStrategy::OnChipResiduals).unwrap();
//! let report = simulate(&graph, &mapping, &arch, 16);
//! println!("{:.1} TOPS, {:.0} images/s", report.tops(), report.images_per_s());
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries regenerating every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aimc_cluster as cluster;
pub use aimc_core as core;
pub use aimc_dnn as dnn;
pub use aimc_noc as noc;
pub use aimc_runtime as runtime;
pub use aimc_sim as sim;
pub use aimc_xbar as xbar;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use aimc_core::{
        map_network, ArchConfig, MapError, MappingStrategy, SystemMapping,
    };
    pub use aimc_dnn::{
        execute_golden, he_init, infer_golden, resnet18, resnet18_cifar, AimcExecutor, ConvCfg,
        Graph, GraphBuilder, Shape, Tensor, Weights,
    };
    pub use aimc_runtime::{
        group_area_efficiency, simulate, AreaModel, EnergyModel, Headline, RunReport, Waterfall,
    };
    pub use aimc_sim::SimTime;
    pub use aimc_xbar::{Crossbar, XbarConfig};
}
