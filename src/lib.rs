//! # aimc-platform — end-to-end DNN inference on a massively parallel
//! analog in-memory computing architecture
//!
//! Facade crate over the whole stack, reproduced from the DATE 2023 paper
//! *"End-to-End DNN Inference on a Massively Parallel Analog In Memory
//! Computing Architecture"* (Bruschi et al.):
//!
//! | layer | crate | contents |
//! |-------|-------|----------|
//! | simulation kernel | [`sim`] | event queue, simulated time, activity stats |
//! | analog device | [`xbar`] | PCM crossbar: noise, converters, MVM timing/energy |
//! | workloads | [`dnn`] | tensors, graphs, ResNet-18, golden + analog executors |
//! | interconnect | [`noc`] | quadrant-tree AXI network + HBM controller |
//! | cluster | [`cluster`] | IMA subsystem, digital kernels, L1, DMA |
//! | **mapping compiler** | [`core`] | splits, reduction trees, tiling, replication, residual placement |
//! | runtime | [`runtime`] | self-timed pipelined simulation + analyses |
//! | serving layer | [`serve`] | async micro-batch scheduler + transport-agnostic fleet router, batch-composition-invariant |
//! | wire protocol | [`wire`] | serializable shard command frames, hand-rolled codec, duplex test pipe |
//! | **facade** | this crate | [`Platform`] builder, [`Session`], unified [`Error`] |
//!
//! ## Quickstart
//!
//! The user-facing API is the [`Platform`] builder plus the [`Session`]
//! object: the builder compiles the workload onto the platform **once**
//! (caching the [`core::SystemMapping`]); the session then evaluates it
//! many times — timing runs, functional inference on either backend, and
//! the paper's headline metrics — without re-compiling or re-programming
//! anything:
//!
//! ```no_run
//! use aimc_platform::prelude::*;
//!
//! # fn main() -> Result<(), aimc_platform::Error> {
//! let mut session = Platform::builder()
//!     .graph(resnet18(256, 256, 1000))           // the paper's workload
//!     .arch(ArchConfig::paper())                 // the Table I platform
//!     .strategy(MappingStrategy::OnChipResiduals)
//!     .he_weights(42)                            // weights for functional inference
//!     .build()?                                  // mapping compiled here, once
//!     .session();
//!
//! // Timing: the event-driven pipeline simulator (cached per batch size).
//! let report = session.run(RunSpec::batch(16))?;
//! println!("{:.1} TOPS, {:.0} images/s", report.tops(), report.images_per_s());
//!
//! // Sec. VI headline metrics from the same run.
//! let headline = session.headline(&EnergyModel::default(), &AreaModel::default())?;
//! println!("{}", headline.render());
//!
//! // Functional inference: programmed crossbars are retained across calls.
//! let image = Tensor::zeros(Shape::new(3, 256, 256));
//! let golden = session.infer_one(&image, Backend::Golden)?;
//! let analog = session.infer_one(
//!     &image,
//!     Backend::analog(7, XbarConfig::hermes_256()),
//! )?;
//! assert_eq!(golden.shape(), analog.shape());
//! # Ok(())
//! # }
//! ```
//!
//! Every fallible step returns the unified [`Error`] — mapping failures,
//! crossbar programming failures, missing weights, and shape mismatches
//! are values, not panics.
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries regenerating every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aimc_cluster as cluster;
pub use aimc_core as core;
pub use aimc_dnn as dnn;
pub use aimc_noc as noc;
pub use aimc_parallel as parallel;
pub use aimc_runtime as runtime;
pub use aimc_serve as serve;
pub use aimc_sim as sim;
pub use aimc_wire as wire;
pub use aimc_xbar as xbar;

mod error;
mod session;

pub use aimc_parallel::Parallelism;
pub use error::{BuildError, Error};
pub use session::{Backend, ModelGroup, Platform, PlatformBuilder, RunSpec, Session};

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use crate::{
        Backend, BuildError, Error, ModelGroup, Platform, PlatformBuilder, RunSpec, Session,
    };
    pub use aimc_core::{map_network, ArchConfig, MapError, MappingStrategy, SystemMapping};
    pub use aimc_dnn::{
        execute_golden, he_init, infer_golden, resnet18, resnet18_cifar, try_execute_golden,
        AimcExecutor, ConvCfg, ExecError, Executor, GoldenExecutor, Graph, GraphBuilder, Shape,
        Tensor, Weights,
    };
    pub use aimc_parallel::Parallelism;
    pub use aimc_runtime::{
        group_area_efficiency, link_loads, simulate, simulate_with, AreaModel, EnergyModel,
        Headline, LinkLoad, RunReport, SimError, Waterfall,
    };
    pub use aimc_serve::{
        Admission, AimdPacer, BatchPolicy, ClassStats, Connect, FleetHandle, FleetPolicy,
        FleetStats, IndexLease, LocalTransport, NoiseSpec, Orphan, PacerConfig, Pending, Priority,
        QosClass, QosOrdering, QosPolicy, QosStats, RecalHandle, RecalPolicy, RecalStats,
        RetryPolicy, RoutePolicy, ServeError, ServeHandle, ServeStats, ShardHealth, ShardLoad,
        ShardServer, ShardSpec, ShardTransport, ShedReason, TcpTransport,
    };
    pub use aimc_sim::SimTime;
    pub use aimc_xbar::{Crossbar, XbarConfig, XbarError};
}
