//! The `Platform` / `Session` API — the single entry point over the
//! mapping compiler, the timing simulator, and the functional executors.
//!
//! The paper's workflow is *configure once, evaluate many*: describe a DNN,
//! compile it onto the heterogeneous AIMC platform, then evaluate it — for
//! timing through the event-driven pipeline simulator, or functionally
//! through the golden / noisy-analog executors. [`Platform`] owns the
//! *configure once* half (the graph, the architecture, and the compiled
//! [`SystemMapping`], built exactly once); [`Session`] owns the *evaluate
//! many* half, caching timing runs per batch size and retaining programmed
//! crossbars across [`Session::infer`] calls so repeated inference never
//! re-programs the arrays — the deployment model non-volatile AIMC exists
//! for.
//!
//! ```
//! use aimc_platform::prelude::*;
//!
//! # fn main() -> Result<(), aimc_platform::Error> {
//! let mut session = Platform::builder()
//!     .graph(resnet18_cifar(10))
//!     .arch(ArchConfig::small(8, 8))
//!     .strategy(MappingStrategy::OnChipResiduals)
//!     .he_weights(42)
//!     .build()?          // compiles the SystemMapping once
//!     .session();
//!
//! let report = session.run(RunSpec::batch(4))?;   // timing simulator
//! assert_eq!(report.batch, 4);
//!
//! let image = Tensor::zeros(Shape::new(3, 32, 32));
//! let logits = session.infer_one(&image, Backend::Golden)?;
//! assert_eq!(logits.shape(), Shape::new(10, 1, 1));
//! # Ok(())
//! # }
//! ```

use crate::error::{BuildError, Error};
use aimc_core::{map_network, ArchConfig, MappingStrategy, SystemMapping};
use aimc_dnn::{
    he_init, AimcExecutor, ExecError, Executor, GoldenExecutor, Graph, Tensor, Weights,
};
use aimc_parallel::Parallelism;
use aimc_runtime::{simulate_with, AreaModel, EnergyModel, Headline, RunReport, Waterfall};
use aimc_serve::{
    BatchPolicy, FleetHandle, FleetPolicy, LocalTransport, QosOrdering, RoutePolicy, ServeError,
    ServeHandle, ShardControl, ShardServer, ShardSpec, ShardTransport,
};
use aimc_xbar::XbarConfig;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

/// A DNN workload compiled onto an AIMC platform description.
///
/// Built through [`Platform::builder`]; the mapping compiler runs exactly
/// once, in [`PlatformBuilder::build`], and the resulting [`SystemMapping`]
/// is shared (not copied) by every session derived from this platform —
/// `Platform` is a cheap `Arc` handle, so cloning it or opening many
/// sessions never duplicates the graph, weights, or mapping.
#[derive(Debug, Clone)]
pub struct Platform {
    inner: Arc<PlatformInner>,
}

#[derive(Debug)]
struct PlatformInner {
    graph: Arc<Graph>,
    arch: ArchConfig,
    strategy: MappingStrategy,
    weights: Option<Arc<Weights>>,
    mapping: SystemMapping,
    parallelism: Parallelism,
}

impl Platform {
    /// Starts describing a platform: `.graph(...)` and `.arch(...)` are
    /// required, `.strategy(...)` defaults to
    /// [`MappingStrategy::OnChipResiduals`] (the paper's final strategy).
    pub fn builder() -> PlatformBuilder {
        PlatformBuilder {
            graph: None,
            arch: None,
            strategy: MappingStrategy::OnChipResiduals,
            weights: WeightsSpec::None,
            parallelism: Parallelism::Serial,
        }
    }

    /// Opens a session for evaluating this platform.
    pub fn session(&self) -> Session {
        Session {
            platform: self.clone(),
            runs: HashMap::new(),
            last_batch: None,
            active: None,
            golden: None,
            analog: None,
            programs: 0,
            parallelism: Arc::new(ParCell(Mutex::new(self.inner.parallelism))),
        }
    }

    /// The workload graph.
    pub fn graph(&self) -> &Graph {
        self.inner.graph.as_ref()
    }

    /// The architecture description.
    pub fn arch(&self) -> &ArchConfig {
        &self.inner.arch
    }

    /// The mapping strategy the workload was compiled with.
    pub fn strategy(&self) -> MappingStrategy {
        self.inner.strategy
    }

    /// The compiled mapping (computed once at build time).
    pub fn mapping(&self) -> &SystemMapping {
        &self.inner.mapping
    }

    /// The functional weights, if any were supplied.
    pub fn weights(&self) -> Option<&Weights> {
        self.inner.weights.as_deref()
    }

    /// The thread budget sessions inherit (see
    /// [`PlatformBuilder::parallelism`]).
    pub fn parallelism(&self) -> Parallelism {
        self.inner.parallelism
    }

    /// Starts a **sharded serving fleet** over `backend`: `n_shards`
    /// replica executors (each programmed from the same seed, so their
    /// conductances are bit-identical), each behind its own micro-batch
    /// scheduler under `policy`, all fed by a router that owns the global
    /// arrival counter and routes stamped requests under `route`.
    ///
    /// This is how the paper's architecture scales — replicate compute,
    /// keep one coherent result. The hard invariant, generalizing the
    /// single-session batch-composition invariance: for a fixed seed the
    /// logits of request *k* are bit-identical to a solo
    /// [`Session::infer_one`] stream of the same images, for **any** shard
    /// count and **any** routing policy, because every request carries its
    /// global stream coordinate ([`aimc_dnn::Executor::infer_batch_indexed`])
    /// and every replica holds the same conductances.
    ///
    /// Fleet-wide transitions go through the returned handle:
    /// [`FleetHandle::apply_drift`] / [`FleetHandle::reprogram`] drain the
    /// fleet and transition every replica at the same stream position
    /// (reprogram also rewinds the global stream to zero, like a solo
    /// session's); [`FleetHandle::set_parallelism`] retunes the shared
    /// thread budget mid-serve without changing a logit.
    ///
    /// The fleet is self-contained: it shares the platform's graph,
    /// weights, and mapping (cheap `Arc`s), but its replicas are
    /// independent of any [`Session`]'s backend slots. `n_shards == 0` is
    /// clamped to 1. Call [`FleetHandle::shutdown`] when done.
    ///
    /// The fleet is also **elastic**: a shard whose transport dies is
    /// evicted and its stranded requests re-run at their original
    /// coordinates on survivors, and [`FleetHandle::add_shard`] grows the
    /// fleet mid-serve (the joiner is programmed from the fleet seed and
    /// replayed through the accumulated drift history) — neither ever
    /// changes a logit of a request that completes.
    ///
    /// This is the all-local convenience path; to mix transports (local
    /// shards, remote [`aimc_serve::TcpTransport`]s) or tune the lease
    /// length, assemble the transports yourself and use
    /// [`Platform::serve_fleet_with`].
    ///
    /// # Errors
    /// [`Error::NoWeights`] without functional weights; programming errors
    /// as in [`Session::program`], per shard.
    pub fn serve_fleet(
        &self,
        n_shards: usize,
        policy: BatchPolicy,
        route: RoutePolicy,
        backend: &Backend,
    ) -> Result<FleetHandle, Error> {
        let n = n_shards.max(1);
        let transports = (0..n)
            .map(|_| {
                self.local_shard(policy, backend)
                    .map(|t| Box::new(t) as Box<dyn ShardTransport>)
            })
            .collect::<Result<Vec<_>, _>>()?;
        self.serve_fleet_with(transports, FleetPolicy::new(route))
    }

    /// Starts a **heterogeneous serving fleet**: one fleet serving several
    /// models at once, each model group its own replica set. For every
    /// [`ModelGroup`] the platform builds `replicas` in-process shards
    /// from the group's backend, all carrying the group's
    /// [`ShardSpec`] — the router's registry then routes
    /// [`FleetHandle::submit_to`]`(model_id, ..)` requests to a compatible
    /// seat, with a **per-group** global stream counter, so each model's
    /// logits stay bit-identical to a solo session over that model's
    /// backend no matter how the groups interleave.
    ///
    /// Background recalibration ([`FleetHandle::start_recal`]) and the
    /// maintenance surface ([`FleetHandle::remove_shard`],
    /// [`FleetHandle::add_shard`], [`FleetHandle::recalibrate_shard`])
    /// operate on such a fleet group-by-group: a rotation drains one seat
    /// of one group while every other seat keeps serving.
    ///
    /// All groups share this platform's graph, weights, and mapping — the
    /// groups differ in *backend* (golden vs. analog, seeds, device
    /// configs), which is exactly the heterogeneity the registry keys on.
    ///
    /// # Errors
    /// [`Error::NoShards`] if `groups` is empty;
    /// [`Error::SpecMismatch`] if two groups claim one model id with
    /// different backends; [`Error::NoWeights`] / programming errors as in
    /// [`Session::program`], per shard.
    pub fn serve_hetero_fleet(
        &self,
        groups: &[ModelGroup],
        policy: BatchPolicy,
        route: RoutePolicy,
    ) -> Result<FleetHandle, Error> {
        let mut transports: Vec<Box<dyn ShardTransport>> = Vec::new();
        for group in groups {
            for _ in 0..group.replicas.max(1) {
                transports.push(Box::new(self.local_shard_for(
                    &group.model_id,
                    policy,
                    &group.backend,
                )?));
            }
        }
        self.serve_fleet_with(transports, FleetPolicy::new(route))
    }

    /// Assembles a serving fleet from caller-supplied shard transports —
    /// the transport-agnostic twin of [`Platform::serve_fleet`]: the
    /// router speaks only [`ShardTransport`], so the vector may mix
    /// in-process shards ([`Platform::local_shard`]) with remote ones
    /// ([`aimc_serve::TcpTransport`] connected to a
    /// [`Platform::shard_server`] on another host) in any proportion —
    /// and, since each transport self-describes through its
    /// [`ShardSpec`], may span several model groups
    /// (built via [`Platform::local_shard_for`] /
    /// [`Platform::shard_server_for`]) in one fleet.
    ///
    /// The fleet invariance carries over verbatim: provided every shard's
    /// replica is programmed from the same seed, the logits of request *k*
    /// are bit-identical to a solo [`Session::infer_one`] stream — for any
    /// transport mix, any lease length, and any routing policy. With
    /// several groups the invariance holds per model id.
    ///
    /// # Errors
    /// [`Error::NoShards`] if `transports` is empty;
    /// [`Error::SpecMismatch`] if two transports claim the same model id
    /// with different replica specs.
    pub fn serve_fleet_with(
        &self,
        transports: Vec<Box<dyn ShardTransport>>,
        policy: FleetPolicy,
    ) -> Result<FleetHandle, Error> {
        FleetHandle::new(transports, policy).map_err(|e| match e {
            ServeError::SpecMismatch(why) => Error::SpecMismatch(why),
            other => {
                // NoShards is the only other constructor failure mode.
                debug_assert!(matches!(other, ServeError::NoShards));
                Error::NoShards
            }
        })
    }

    /// Builds one in-process replica shard for `backend`: a micro-batch
    /// scheduler (under `policy`) over a replica programmed from the
    /// backend's seed, plus its control surface, behind the
    /// [`ShardTransport`] boundary — the building block of
    /// [`Platform::serve_fleet_with`] and of [`Platform::shard_server`].
    ///
    /// The shard carries the default model id (`"default"`), so a fleet of
    /// such shards forms one homogeneous group — exactly the pre-registry
    /// behavior. Use [`Platform::local_shard_for`] to place the shard in a
    /// named model group of a heterogeneous fleet.
    ///
    /// # Errors
    /// [`Error::NoWeights`] without functional weights; programming errors
    /// as in [`Session::program`].
    pub fn local_shard(
        &self,
        policy: BatchPolicy,
        backend: &Backend,
    ) -> Result<LocalTransport, Error> {
        self.local_shard_for(ShardSpec::DEFAULT_MODEL_ID, policy, backend)
    }

    /// [`Platform::local_shard`] with an explicit model id: the shard's
    /// [`ShardSpec`] — the backend's crossbar config,
    /// noise model, and seed under `model_id` — is what the fleet registry
    /// groups seats by, what [`FleetHandle::submit_to`] routes on, and
    /// what a recalibration reprograms from.
    ///
    /// # Errors
    /// [`Error::NoWeights`] without functional weights; programming errors
    /// as in [`Session::program`].
    pub fn local_shard_for(
        &self,
        model_id: &str,
        policy: BatchPolicy,
        backend: &Backend,
    ) -> Result<LocalTransport, Error> {
        let spec = backend.shard_spec(model_id);
        let inner = &self.inner;
        let weights = inner.weights.clone().ok_or(Error::NoWeights)?;
        let graph = Arc::clone(&inner.graph);
        // Per-shard thread-budget cell, snapshotted per batch; fleet-wide
        // retunes fan through each shard's control.
        let par = Arc::new(ParCell(Mutex::new(inner.parallelism)));
        match backend {
            Backend::Golden => {
                // Golden replicas are stateless; the executor is a cheap
                // wrapper over the shared graph/weight Arcs.
                let exec = Arc::new(GoldenExecutor::from_shared(graph, weights)?);
                let p = Arc::clone(&par);
                let runner: Box<aimc_serve::DynRunner> =
                    Box::new(move |indices: &[u64], inputs: &[Tensor]| {
                        exec.infer_batch_indexed(&zip_indexed(indices, inputs), p.get())
                    });
                Ok(LocalTransport::with_spec(
                    aimc_serve::spawn(policy, runner),
                    Box::new(GoldenShardControl { par }),
                    spec,
                ))
            }
            Backend::Analog { seed, xbar_cfg } => {
                // Same seed ⇒ every tile of every replica programs from
                // the same derived stream ⇒ identical conductances.
                let exec = AimcExecutor::try_program_shared_with(
                    Arc::clone(&graph),
                    Arc::clone(&weights),
                    xbar_cfg,
                    *seed,
                    par.get(),
                )?;
                let slot = Arc::new(RwLock::new(exec));
                let s = Arc::clone(&slot);
                let p = Arc::clone(&par);
                let runner: Box<aimc_serve::DynRunner> =
                    Box::new(move |indices: &[u64], inputs: &[Tensor]| {
                        // Snapshot the thread budget once per batch;
                        // read-lock the replica so fleet drift/reprogram
                        // wait for in-flight batches.
                        let par = p.get();
                        let exec = s.read().unwrap();
                        exec.try_infer_batch_indexed(&zip_indexed(indices, inputs), par)
                    });
                Ok(LocalTransport::with_spec(
                    aimc_serve::spawn(policy, runner),
                    Box::new(AnalogShardControl {
                        slot,
                        graph,
                        weights,
                        xbar_cfg: xbar_cfg.clone(),
                        seed: *seed,
                        par,
                    }),
                    spec,
                ))
            }
        }
    }

    /// Builds a wire-protocol server around one freshly programmed replica
    /// shard: the host side of a distributed fleet. Serve connections with
    /// [`ShardServer::serve_next`] / [`ShardServer::serve_stream`], or
    /// accept them concurrently with [`ShardServer::serve_forever`] on a
    /// listener; a router on another host reaches it through
    /// [`aimc_serve::TcpTransport`], which reconnects and replays
    /// unacknowledged requests across link failures.
    ///
    /// # Errors
    /// [`Error::NoWeights`] without functional weights; programming errors
    /// as in [`Session::program`].
    pub fn shard_server(
        &self,
        policy: BatchPolicy,
        backend: &Backend,
    ) -> Result<ShardServer, Error> {
        Ok(ShardServer::new(Box::new(
            self.local_shard(policy, backend)?,
        )))
    }

    /// [`Platform::shard_server`] with an explicit model id: the hosted
    /// replica carries the named [`ShardSpec`], which a
    /// remote router probes over the wire and groups by — so a
    /// heterogeneous fleet can span hosts just like a homogeneous one.
    ///
    /// # Errors
    /// [`Error::NoWeights`] without functional weights; programming errors
    /// as in [`Session::program`].
    pub fn shard_server_for(
        &self,
        model_id: &str,
        policy: BatchPolicy,
        backend: &Backend,
    ) -> Result<ShardServer, Error> {
        Ok(ShardServer::new(Box::new(
            self.local_shard_for(model_id, policy, backend)?,
        )))
    }
}

/// One replica group of a heterogeneous fleet (see
/// [`Platform::serve_hetero_fleet`]): `replicas` in-process shards built
/// from `backend`, all serving the model stream `model_id`.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelGroup {
    /// The model id requests address via [`FleetHandle::submit_to`].
    pub model_id: String,
    /// The backend every replica of this group is programmed from.
    pub backend: Backend,
    /// Seats in the group (0 is clamped to 1).
    pub replicas: usize,
}

impl ModelGroup {
    /// A group of `replicas` seats serving `model_id` on `backend`.
    pub fn new(model_id: impl Into<String>, replicas: usize, backend: Backend) -> Self {
        ModelGroup {
            model_id: model_id.into(),
            backend,
            replicas,
        }
    }
}

/// Fleet control surface of one golden shard: stateless, so drift is a
/// no-op and "reprogramming" needs no work.
struct GoldenShardControl {
    par: Arc<ParCell>,
}

impl ShardControl for GoldenShardControl {
    fn apply_drift(&self, _t_hours: f64) -> bool {
        false
    }

    fn reprogram(&self) -> Result<(), ExecError> {
        Ok(())
    }

    fn set_parallelism(&self, par: Parallelism) {
        self.par.set(par);
    }
}

/// Fleet control surface of one analog shard: owns the replica slot plus
/// everything needed to rewrite it from scratch with the original seed.
struct AnalogShardControl {
    slot: Arc<RwLock<AimcExecutor>>,
    graph: Arc<Graph>,
    weights: Arc<Weights>,
    xbar_cfg: XbarConfig,
    seed: u64,
    par: Arc<ParCell>,
}

impl ShardControl for AnalogShardControl {
    fn apply_drift(&self, t_hours: f64) -> bool {
        // Exclusive access: any in-flight batch finishes first, then the
        // replica's conductances drift atomically.
        self.slot.write().unwrap().apply_drift(t_hours);
        true
    }

    fn reprogram(&self) -> Result<(), ExecError> {
        let exec = AimcExecutor::try_program_shared_with(
            Arc::clone(&self.graph),
            Arc::clone(&self.weights),
            &self.xbar_cfg,
            self.seed,
            self.par.get(),
        )?;
        // Swap into the same slot, so the shard's runner transparently
        // serves the freshly written replica (and its rewound counter).
        *self.slot.write().unwrap() = exec;
        Ok(())
    }

    fn set_parallelism(&self, par: Parallelism) {
        // The shared cell is all the fleet runner reads (snapshotted per
        // batch) — no slot write-lock, so mid-serve retunes never stall
        // behind in-flight batches.
        self.par.set(par);
    }
}

/// Pairs each input with its global stream index for
/// [`Executor::infer_batch_indexed`] — the adapter between the serving
/// layer's parallel slices and the executors' indexed items.
fn zip_indexed<'a>(indices: &[u64], inputs: &'a [Tensor]) -> Vec<(u64, &'a Tensor)> {
    debug_assert_eq!(indices.len(), inputs.len());
    indices.iter().copied().zip(inputs.iter()).collect()
}

#[derive(Debug, Clone)]
enum WeightsSpec {
    None,
    Explicit(Weights),
    He(u64),
}

/// Builder for [`Platform`] (see [`Platform::builder`]).
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    graph: Option<Graph>,
    arch: Option<ArchConfig>,
    strategy: MappingStrategy,
    weights: WeightsSpec,
    parallelism: Parallelism,
}

impl PlatformBuilder {
    /// Sets the workload graph (required).
    pub fn graph(mut self, graph: Graph) -> Self {
        self.graph = Some(graph);
        self
    }

    /// Sets the architecture description (required).
    pub fn arch(mut self, arch: ArchConfig) -> Self {
        self.arch = Some(arch);
        self
    }

    /// Sets the mapping strategy (default:
    /// [`MappingStrategy::OnChipResiduals`]).
    pub fn strategy(mut self, strategy: MappingStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Supplies functional weights for [`Session::infer`].
    pub fn weights(mut self, weights: Weights) -> Self {
        self.weights = WeightsSpec::Explicit(weights);
        self
    }

    /// Generates deterministic He-initialized weights at build time
    /// (convenience over [`PlatformBuilder::weights`]).
    pub fn he_weights(mut self, seed: u64) -> Self {
        self.weights = WeightsSpec::He(seed);
        self
    }

    /// Sets the thread budget of the parallel execution engine (default:
    /// [`Parallelism::Serial`]).
    ///
    /// The knob trades wall-clock only, never results: crossbar programming
    /// fans out across tiles, `Session::infer` fans out across the batch
    /// (or across tiles for a single image), and every setting produces
    /// logits bit-identical to serial execution for the same seed —
    /// randomness is keyed to stable `(seed, layer, tile, invocation)`
    /// coordinates, not to scheduling order.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Compiles the workload onto the platform, caching the
    /// [`SystemMapping`].
    ///
    /// # Errors
    /// [`Error::Builder`] if the graph or architecture is missing;
    /// [`Error::Map`] if the mapping compiler rejects the pair.
    pub fn build(self) -> Result<Platform, Error> {
        let graph = self.graph.ok_or(BuildError::MissingGraph)?;
        let arch = self.arch.ok_or(BuildError::MissingArch)?;
        let mapping = map_network(&graph, &arch, self.strategy)?;
        let weights = match self.weights {
            WeightsSpec::None => None,
            WeightsSpec::Explicit(w) => Some(Arc::new(w)),
            WeightsSpec::He(seed) => Some(Arc::new(he_init(&graph, seed))),
        };
        Ok(Platform {
            inner: Arc::new(PlatformInner {
                graph: Arc::new(graph),
                arch,
                strategy: self.strategy,
                weights,
                mapping,
                parallelism: self.parallelism,
            }),
        })
    }
}

/// What to simulate in one [`Session::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSpec {
    /// Images in the pipelined batch.
    pub batch: usize,
}

impl RunSpec {
    /// A run of `batch` pipelined images.
    pub fn batch(batch: usize) -> Self {
        RunSpec { batch }
    }
}

impl Default for RunSpec {
    /// The paper's batch of 16 images.
    fn default() -> Self {
        RunSpec { batch: 16 }
    }
}

/// Which functional executor evaluates [`Session::infer`].
#[derive(Debug, Clone, PartialEq)]
pub enum Backend {
    /// Digital f32 ground truth (the golden executor).
    Golden,
    /// Modeled PCM crossbars: programming noise, read noise, DAC/ADC
    /// quantization, layers split across arrays like the Sec. V-1 mapping.
    Analog {
        /// Seed for programming and read noise (deterministic streams).
        seed: u64,
        /// The crossbar device configuration.
        xbar_cfg: XbarConfig,
    },
}

impl Backend {
    /// Analog backend with the given seed and device configuration.
    pub fn analog(seed: u64, xbar_cfg: XbarConfig) -> Self {
        Backend::Analog { seed, xbar_cfg }
    }

    /// The replica identity a shard built from this backend carries under
    /// `model_id` — what the fleet registry groups seats by and what a
    /// recalibration reprograms from. Golden backends map to the constant
    /// noiseless spec; analog backends carry their device config and seed.
    pub fn shard_spec(&self, model_id: &str) -> ShardSpec {
        match self {
            Backend::Golden => ShardSpec::golden(model_id),
            Backend::Analog { seed, xbar_cfg } => {
                ShardSpec::analog(model_id, xbar_cfg.clone(), *seed)
            }
        }
    }
}

/// Shared parallelism knob: the session and every live [`ServeHandle`]
/// runner read the same cell, so [`Session::set_parallelism`] takes effect
/// for in-flight serving — snapshotted once per dispatched batch, never
/// mid-batch.
#[derive(Debug)]
struct ParCell(Mutex<Parallelism>);

impl ParCell {
    fn get(&self) -> Parallelism {
        *self.0.lock().unwrap()
    }

    fn set(&self, par: Parallelism) {
        *self.0.lock().unwrap() = par;
    }
}

/// An evaluation session over a compiled [`Platform`].
///
/// Caches timing-simulator results per batch size, and keeps the
/// functional backends *programmed*: the analog crossbars and the golden
/// executor live in separate slots, so consecutive [`Session::infer`]
/// calls with the same [`Backend`] reuse the same crossbar tiles (weights
/// stay in the arrays, as on the non-volatile hardware) — and interleaved
/// golden reference checks do **not** discard the programmed (possibly
/// drifted) conductances. Crossbars are re-written only when a *different*
/// analog backend is requested or [`Session::reprogram`] forces it.
///
/// The backend slots are shared (`Arc`) with any [`ServeHandle`] created
/// by [`Session::serve`], so serving, [`Session::apply_drift`], and
/// [`Session::reprogram`] all act on the *same* crossbars.
pub struct Session {
    platform: Platform,
    runs: HashMap<usize, RunReport>,
    last_batch: Option<usize>,
    /// Most recently used backend (dispatch target for `infer`).
    active: Option<Backend>,
    golden: Option<Arc<GoldenExecutor>>,
    /// The analog slot: `RwLock` so serve workers infer through shared
    /// read access while drift/reprogram take exclusive write access.
    analog: Option<(Backend, Arc<RwLock<AimcExecutor>>)>,
    programs: usize,
    /// Thread budget for programming and functional inference (shared
    /// with serve runners).
    parallelism: Arc<ParCell>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("strategy", &self.platform.inner.strategy)
            .field("cached_runs", &self.runs.len())
            .field("active", &self.active)
            .field("programs", &self.programs)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// The platform this session evaluates.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Drives the timing simulator for `spec`, returning the pipelined
    /// batch report. Results are cached per batch size — repeated calls
    /// with the same spec are free.
    ///
    /// The simulation itself is sharded per pipeline stage across the
    /// session's [`Session::set_parallelism`] workers; the report is
    /// bit-identical regardless of the thread budget.
    ///
    /// # Errors
    /// [`Error::InvalidRunSpec`] if the batch is zero;
    /// [`Error::Sim`] if the simulator rejects the run.
    pub fn run(&mut self, spec: RunSpec) -> Result<&RunReport, Error> {
        if spec.batch == 0 {
            return Err(Error::InvalidRunSpec("batch must be positive".into()));
        }
        self.last_batch = Some(spec.batch);
        let p = &self.platform.inner;
        if !self.runs.contains_key(&spec.batch) {
            let report = simulate_with(
                &p.graph,
                &p.mapping,
                &p.arch,
                spec.batch,
                self.parallelism.get(),
            )?;
            self.runs.insert(spec.batch, report);
        }
        Ok(&self.runs[&spec.batch])
    }

    /// The most recent [`Session::run`] report, if any.
    pub fn last_run(&self) -> Option<&RunReport> {
        self.runs.get(&self.last_batch?)
    }

    /// The platform's shared graph/weights handles, for executor
    /// construction without deep copies.
    fn shared_graph_weights(&self) -> Result<(Arc<Graph>, Arc<Weights>), Error> {
        let inner = &self.platform.inner;
        let weights = inner.weights.clone().ok_or(Error::NoWeights)?;
        Ok((inner.graph.clone(), weights))
    }

    /// Ensures `backend` is ready and makes it the dispatch target for
    /// [`Session::infer`], reusing the existing executor when one is
    /// already programmed (no crossbar re-writing). The golden and analog
    /// slots are independent: requesting [`Backend::Golden`] never touches
    /// programmed crossbars.
    ///
    /// # Errors
    /// [`Error::NoWeights`] if the platform has no functional weights;
    /// [`Error::Exec`] / [`Error::Xbar`] on programming failures.
    pub fn program(&mut self, backend: &Backend) -> Result<(), Error> {
        match backend {
            Backend::Golden => {
                if self.golden.is_none() {
                    let (graph, weights) = self.shared_graph_weights()?;
                    self.golden = Some(Arc::new(GoldenExecutor::from_shared(graph, weights)?));
                }
            }
            Backend::Analog { .. } => {
                let already = self.analog.as_ref().is_some_and(|(b, _)| b == backend);
                if !already {
                    self.write_crossbars(backend)?;
                }
            }
        }
        self.active = Some(backend.clone());
        Ok(())
    }

    /// Programs `backend` from scratch, discarding the slot's existing
    /// executor — e.g. to model freshly-written conductances after
    /// [`Session::apply_drift`].
    ///
    /// # Errors
    /// Same conditions as [`Session::program`].
    pub fn reprogram(&mut self, backend: &Backend) -> Result<(), Error> {
        match backend {
            Backend::Golden => {
                let (graph, weights) = self.shared_graph_weights()?;
                self.golden = Some(Arc::new(GoldenExecutor::from_shared(graph, weights)?));
            }
            Backend::Analog { .. } => self.write_crossbars(backend)?,
        }
        self.active = Some(backend.clone());
        Ok(())
    }

    /// Writes `backend`'s weights into fresh crossbars (counts as one
    /// programming event). Tiles are programmed in parallel up to the
    /// session's thread budget — bit-identical to a serial deployment,
    /// since every tile programs from its own derived RNG stream.
    ///
    /// The analog slot's `Arc` is reused when one exists, so live
    /// [`ServeHandle`]s transparently serve the freshly written crossbars
    /// (and their reset image-coordinate counter).
    fn write_crossbars(&mut self, backend: &Backend) -> Result<(), Error> {
        let Backend::Analog { seed, xbar_cfg } = backend else {
            unreachable!("caller matched Backend::Analog");
        };
        let (graph, weights) = self.shared_graph_weights()?;
        let exec = AimcExecutor::try_program_shared_with(
            graph,
            weights,
            xbar_cfg,
            *seed,
            self.parallelism.get(),
        )?;
        match &mut self.analog {
            Some((slot_backend, slot)) => {
                *slot_backend = backend.clone();
                *slot.write().unwrap() = exec;
            }
            None => self.analog = Some((backend.clone(), Arc::new(RwLock::new(exec)))),
        }
        self.programs += 1;
        Ok(())
    }

    /// Runs `f` against the active backend's executor (set by
    /// [`Session::program`]), holding the analog slot's read lock for the
    /// duration when the analog backend is active.
    fn with_active<R>(&self, f: impl FnOnce(&dyn Executor) -> R) -> R {
        match self.active.as_ref().expect("program() ran first") {
            Backend::Golden => f(self.golden.as_ref().expect("programmed golden").as_ref()),
            Backend::Analog { .. } => {
                let guard = self
                    .analog
                    .as_ref()
                    .expect("programmed analog")
                    .1
                    .read()
                    .unwrap();
                f(&*guard)
            }
        }
    }

    /// Overrides the thread budget inherited from the platform (applies to
    /// subsequent programming and inference; never changes results).
    ///
    /// The knob is shared with every [`ServeHandle`] spawned from this
    /// session: in-flight serving picks the new setting up **per batch**
    /// (a batch snapshots the budget once at dispatch, so no batch ever
    /// mixes thread budgets mid-flight — and results are bit-identical
    /// either way).
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism.set(parallelism);
        if let Some((_, slot)) = self.analog.as_ref() {
            slot.write().unwrap().set_parallelism(parallelism);
        }
    }

    /// The session's current thread budget.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism.get()
    }

    /// Runs a batch of images through the functional `backend`, returning
    /// one output tensor (logits) per image.
    ///
    /// The backend is programmed on first use and *retained*: a second
    /// `infer` with the same backend reuses the already-programmed
    /// crossbars.
    ///
    /// With a parallel thread budget ([`PlatformBuilder::parallelism`] /
    /// [`Session::set_parallelism`]) the batch fans out across worker
    /// threads — and still returns exactly the logits the serial loop
    /// would, image for image, bit for bit.
    ///
    /// # Errors
    /// Programming errors as in [`Session::program`], plus
    /// [`Error::Exec`] on input-shape mismatches (lowest failing image
    /// wins, as in serial order).
    pub fn infer(&mut self, images: &[Tensor], backend: Backend) -> Result<Vec<Tensor>, Error> {
        self.program(&backend)?;
        let par = self.parallelism.get();
        self.with_active(|e| e.infer_batch(images, par))
            .map_err(Error::from)
    }

    /// Runs one image through the functional `backend` (see
    /// [`Session::infer`]).
    ///
    /// # Errors
    /// Same conditions as [`Session::infer`].
    pub fn infer_one(&mut self, image: &Tensor, backend: Backend) -> Result<Tensor, Error> {
        self.program(&backend)?;
        self.with_active(|e| e.infer(image)).map_err(Error::from)
    }

    /// Starts an asynchronous micro-batch server over the **active**
    /// backend (program one first via [`Session::program`] or any infer
    /// call): single-image requests submitted through the returned
    /// [`ServeHandle`] are coalesced under `policy` and driven through the
    /// batched executor path.
    ///
    /// **Batch-composition invariance.** Requests are numbered in arrival
    /// order and evaluated at that stable global image coordinate
    /// ([`Executor::infer_batch_at`]), so for a fixed seed the logits of
    /// request *k* are bit-identical to a solo [`Session::infer_one`]
    /// stream of the same images — no matter how the scheduler chopped the
    /// stream into batches (`max_batch` 1, 16, or whatever the latency
    /// budget produced).
    ///
    /// The handle shares this session's state rather than snapshotting it:
    ///
    /// * the analog slot — [`Session::apply_drift`] and
    ///   [`Session::reprogram`] act on the crossbars the handle serves
    ///   (drain the handle first for a deterministic transition point);
    /// * the thread budget — [`Session::set_parallelism`] applies to
    ///   in-flight serving, snapshotted once per dispatched batch.
    ///
    /// Call [`ServeHandle::shutdown`] when done. Interleaving direct
    /// [`Session::infer`] calls with live serving is safe (coordinate
    /// ranges are claimed atomically, never aliased) but the interleaving
    /// order is scheduling-dependent — drain first for reproducible
    /// streams.
    ///
    /// **Not a fleet shard.** On a handle returned here, the *backend's
    /// own counter* is the stream authority (that is what makes drift /
    /// reprogram transitions match a solo stream), so the analog runner
    /// ignores externally stamped indices: do not use
    /// [`ServeHandle::submit_at`] on this handle — route through
    /// [`Platform::serve_fleet`] when an external router should own the
    /// numbering. For the same reason the analog path clamps the QoS
    /// batch ordering to FIFO: the runner numbers requests in dispatch
    /// order, so EDF reordering would move a request's stream coordinate
    /// (and therefore its logits). Class annotations, admission gating,
    /// and per-class stats still apply in full; fleet shards — which
    /// honor stamped indices — keep EDF available.
    ///
    /// # Errors
    /// [`Error::NoBackend`] if no functional backend is programmed yet.
    pub fn serve(&mut self, mut policy: BatchPolicy) -> Result<ServeHandle, Error> {
        let active = self.active.clone().ok_or(Error::NoBackend)?;
        let par = Arc::clone(&self.parallelism);
        let runner: Box<aimc_serve::DynRunner> = match active {
            Backend::Golden => {
                let exec = Arc::clone(self.golden.as_ref().expect("programmed golden"));
                Box::new(move |indices: &[u64], inputs: &[Tensor]| {
                    exec.infer_batch_indexed(&zip_indexed(indices, inputs), par.get())
                })
            }
            Backend::Analog { .. } => {
                // The runner below numbers the stream itself, so only
                // arrival-order dispatch keeps coordinates solo-identical.
                policy.qos.ordering = QosOrdering::Fifo;
                let slot = Arc::clone(&self.analog.as_ref().expect("programmed analog").1);
                Box::new(move |_indices: &[u64], inputs: &[Tensor]| {
                    // Snapshot the thread budget once per batch.
                    let par = par.get();
                    let exec = slot.read().unwrap();
                    // The executor's own image counter — not the handle's
                    // stamped indices — is the stream authority here: it
                    // survives drift untouched and resets with
                    // reprogramming, exactly like a solo-infer stream
                    // through the same transitions (fleet shards are the
                    // opposite: the router owns the numbering). The claim
                    // is atomic, so even a concurrent counter-claiming
                    // infer can never alias a coordinate.
                    let base = exec.claim_images(inputs.len() as u64);
                    exec.try_infer_batch_at(inputs, base, par)
                })
            }
        };
        Ok(aimc_serve::spawn(policy, runner))
    }

    /// Applies PCM conductance drift (`t_hours` since programming) to the
    /// retained analog crossbars — regardless of which backend is active,
    /// since golden reference checks do not disturb the arrays.
    ///
    /// # Errors
    /// [`Error::NoAnalogBackend`] if no analog backend is programmed.
    pub fn apply_drift(&mut self, t_hours: f64) -> Result<(), Error> {
        match self.analog.as_ref() {
            Some((_, slot)) => {
                // Exclusive access: any serving batch in flight finishes
                // first, then the conductances drift atomically.
                slot.write().unwrap().apply_drift(t_hours);
                Ok(())
            }
            None => Err(Error::NoAnalogBackend),
        }
    }

    /// The most recently used functional backend, if any.
    pub fn programmed_backend(&self) -> Option<&Backend> {
        self.active.as_ref()
    }

    /// How many times crossbars have been written in this session — stays
    /// at 1 across repeated same-backend [`Session::infer`] calls *and*
    /// across interleaved golden checks (the golden slot is independent).
    pub fn programming_count(&self) -> usize {
        self.programs
    }

    /// Crossbar tiles held by the retained analog backend (0 if none is
    /// programmed).
    pub fn tile_count(&self) -> usize {
        self.analog
            .as_ref()
            .map_or(0, |(_, slot)| Executor::tile_count(&*slot.read().unwrap()))
    }

    /// Analog MVMs evaluated since the crossbars were written (0 if no
    /// analog backend is programmed).
    pub fn total_mvms(&self) -> u64 {
        self.analog
            .as_ref()
            .map_or(0, |(_, slot)| Executor::total_mvms(&*slot.read().unwrap()))
    }

    /// Images consumed from the analog backend's request stream so far —
    /// solo infers, batches, and served requests all advance it (0 if no
    /// analog backend is programmed; resets on [`Session::reprogram`]).
    pub fn images_seen(&self) -> u64 {
        self.analog
            .as_ref()
            .map_or(0, |(_, slot)| slot.read().unwrap().images_seen())
    }

    /// Computes the Sec. VI headline metrics (TOPS, images/s, energy,
    /// TOPS/W, GOPS/mm², …) from the most recent [`Session::run`] — or
    /// from a fresh default run ([`RunSpec::default`], the paper's batch
    /// 16) if none has happened yet.
    ///
    /// # Errors
    /// Propagates [`Session::run`] errors for the implicit default run.
    pub fn headline(
        &mut self,
        energy_model: &EnergyModel,
        area_model: &AreaModel,
    ) -> Result<Headline, Error> {
        if self.last_run().is_none() {
            self.run(RunSpec::default())?;
        }
        let report = self.last_run().expect("run above");
        Ok(Headline::compute(
            &self.platform.inner.mapping,
            &self.platform.inner.arch,
            report,
            energy_model,
            area_model,
        ))
    }

    /// Computes the Fig. 6 inefficiency waterfall from the most recent
    /// [`Session::run`] (or a fresh default run, as in
    /// [`Session::headline`]).
    ///
    /// # Errors
    /// Propagates [`Session::run`] errors for the implicit default run.
    pub fn waterfall(&mut self) -> Result<Waterfall, Error> {
        if self.last_run().is_none() {
            self.run(RunSpec::default())?;
        }
        let report = self.last_run().expect("run above");
        Ok(Waterfall::compute(
            &self.platform.inner.graph,
            &self.platform.inner.mapping,
            &self.platform.inner.arch,
            report,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimc_dnn::{ConvCfg, GraphBuilder, Shape};

    fn small_cnn() -> Graph {
        let mut b = GraphBuilder::new(Shape::new(3, 8, 8));
        let c0 = b.conv("c0", b.input(), ConvCfg::k3(3, 8, 1));
        let gap = b.global_avgpool("gap", c0);
        b.linear("fc", gap, 4);
        b.finish()
    }

    #[test]
    fn builder_requires_graph_and_arch() {
        assert_eq!(
            Platform::builder()
                .arch(ArchConfig::small(2, 2))
                .build()
                .unwrap_err(),
            Error::Builder(BuildError::MissingGraph)
        );
        assert_eq!(
            Platform::builder().graph(small_cnn()).build().unwrap_err(),
            Error::Builder(BuildError::MissingArch)
        );
    }

    #[test]
    fn build_compiles_mapping_once_and_sessions_share_it() {
        let p = Platform::builder()
            .graph(small_cnn())
            .arch(ArchConfig::small(4, 4))
            .build()
            .unwrap();
        assert!(p.mapping().n_clusters_used > 0);
        let s1 = p.session();
        let s2 = p.session();
        assert_eq!(s1.platform().mapping(), s2.platform().mapping());
    }

    #[test]
    fn run_caches_per_batch() {
        let p = Platform::builder()
            .graph(small_cnn())
            .arch(ArchConfig::small(4, 4))
            .build()
            .unwrap();
        let mut s = p.session();
        let makespan = s.run(RunSpec::batch(2)).unwrap().makespan;
        // Cached: identical object, no re-simulation.
        assert_eq!(s.run(RunSpec::batch(2)).unwrap().makespan, makespan);
        assert_eq!(s.last_run().unwrap().batch, 2);
    }

    #[test]
    fn zero_batch_is_rejected() {
        let p = Platform::builder()
            .graph(small_cnn())
            .arch(ArchConfig::small(4, 4))
            .build()
            .unwrap();
        let mut s = p.session();
        assert!(matches!(
            s.run(RunSpec::batch(0)),
            Err(Error::InvalidRunSpec(_))
        ));
    }

    #[test]
    fn infer_without_weights_is_an_error() {
        let p = Platform::builder()
            .graph(small_cnn())
            .arch(ArchConfig::small(4, 4))
            .build()
            .unwrap();
        let mut s = p.session();
        let x = Tensor::zeros(Shape::new(3, 8, 8));
        assert_eq!(s.infer_one(&x, Backend::Golden), Err(Error::NoWeights));
    }

    #[test]
    fn drift_requires_analog_backend() {
        let p = Platform::builder()
            .graph(small_cnn())
            .arch(ArchConfig::small(4, 4))
            .he_weights(1)
            .build()
            .unwrap();
        let mut s = p.session();
        assert_eq!(s.apply_drift(24.0), Err(Error::NoAnalogBackend));
        let x = Tensor::zeros(Shape::new(3, 8, 8));
        s.infer_one(&x, Backend::Golden).unwrap();
        assert_eq!(s.apply_drift(24.0), Err(Error::NoAnalogBackend));
        s.infer_one(&x, Backend::analog(1, XbarConfig::hermes_256()))
            .unwrap();
        assert_eq!(s.apply_drift(24.0), Ok(()));
    }
}
