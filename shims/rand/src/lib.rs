//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to the crates.io registry, so this
//! workspace vendors the small slice of `rand` the platform actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] and
//! [`Rng::gen_range`] over float and integer ranges.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, which is all the simulator and its tests rely on. It is
//! **not** stream-compatible with upstream `rand`'s ChaCha-based `StdRng`,
//! and it is not cryptographically secure.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution
    /// (uniform over `[0, 1)` for floats, uniform over all values for
    /// integers).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// A distribution that can sample values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution (see [`Rng::gen`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly sampleable over a range.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_float {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let u: $t = Standard.sample(rng);
                low + u * (high - low)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                Self::sample_half_open(rng, low, high)
            }
        }
    };
}

uniform_float!(f32);
uniform_float!(f64);

macro_rules! uniform_int {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    };
}

uniform_int!(u8);
uniform_int!(u16);
uniform_int!(u32);
uniform_int!(u64);
uniform_int!(usize);
uniform_int!(i8);
uniform_int!(i16);
uniform_int!(i32);
uniform_int!(i64);
uniform_int!(isize);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (offline stand-in for the
    /// upstream `StdRng`; same API, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as upstream does.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = rng.gen_range(5usize..17);
            assert!((5..17).contains(&n));
            let m = rng.gen_range(1u64..=8);
            assert!((1..=8).contains(&m));
        }
    }

    #[test]
    fn gen_range_mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_dyn_sized_refs() {
        fn takes_unsized<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(0);
        assert!(takes_unsized(&mut rng).is_finite());
    }
}
