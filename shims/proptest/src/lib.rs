//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no registry access, so this workspace vendors
//! the slice of `proptest` its test suites use: the [`proptest!`] macro over
//! named strategies (`arg in strategy`), range strategies over integers and
//! floats, [`any`], [`prop_assert!`]/[`prop_assert_eq!`], and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: cases are sampled from a generator seeded
//! deterministically from the test name (fully reproducible runs), and
//! failing cases are reported but **not shrunk**.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SampleUniform, SeedableRng};
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Runner configuration (subset: number of cases per property).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        self.clone().sample_single(rng)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        self.clone().sample_single(rng)
    }
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

// Floats are deliberately omitted: upstream `any::<f64>()` covers the full
// domain (negatives, infinities, NaN) while the shim's Standard
// distribution samples only [0, 1) — a silent narrowing that could make
// properties pass vacuously. Use explicit range strategies for floats.
arbitrary_via_standard!(u32, u64, usize, bool);

/// The full-domain strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Samples one value from either a [`Strategy`] or an [`Any`] — the macro
/// funnels every `arg in strat` binding through this.
pub fn sample_from<S: SampleSource>(strat: &S, rng: &mut StdRng) -> S::Value {
    strat.draw(rng)
}

/// Unifies range strategies and [`any`] under one sampling entry point.
pub trait SampleSource {
    /// The produced value type.
    type Value;

    /// Draws one value.
    fn draw(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform> SampleSource for Range<T> {
    type Value = T;

    fn draw(&self, rng: &mut StdRng) -> T {
        self.clone().sample_single(rng)
    }
}

impl<T: SampleUniform> SampleSource for RangeInclusive<T> {
    type Value = T;

    fn draw(&self, rng: &mut StdRng) -> T {
        self.clone().sample_single(rng)
    }
}

impl<T: Arbitrary> SampleSource for Any<T> {
    type Value = T;

    fn draw(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! sample_source_for_tuple {
    ($($s:ident : $idx:tt),+) => {
        impl<$($s: SampleSource),+> SampleSource for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn draw(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.draw(rng),)+)
            }
        }
    };
}

sample_source_for_tuple!(S0: 0);
sample_source_for_tuple!(S0: 0, S1: 1);
sample_source_for_tuple!(S0: 0, S1: 1, S2: 2);
sample_source_for_tuple!(S0: 0, S1: 1, S2: 2, S3: 3);
sample_source_for_tuple!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4);
sample_source_for_tuple!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5);

/// Collection strategies (subset: `prop::collection::vec`).
pub mod collection {
    use super::{SampleSource, StdRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange {
                lo,
                hi_inclusive: hi,
            }
        }
    }

    /// Strategy producing vectors of `element` with a length in `size`.
    pub fn vec<S: SampleSource>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: SampleSource> SampleSource for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn draw(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.draw(rng)).collect()
        }
    }
}

/// Deterministic per-property generator (FNV-1a of the test path).
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::sample_from(&($strat), &mut __rng);)*
                    let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "property {} failed at case {}: {}",
                            stringify!($name),
                            __case,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the enclosing property case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the enclosing property case when `left != right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// One-stop imports mirroring `proptest::prelude::*` (including the `prop`
/// module alias used for `prop::collection::vec`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Any, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Sampled values stay inside their strategy's range.
        #[test]
        fn ranges_are_respected(
            a in 1usize..16,
            b in 1usize..=256,
            x in 0.01f64..1.0,
            s in any::<u64>(),
        ) {
            prop_assert!((1..16).contains(&a));
            prop_assert!((1..=256).contains(&b));
            prop_assert!((0.01..1.0).contains(&x));
            prop_assert_eq!(s, s);
        }
    }

    proptest! {
        /// Default config also expands.
        #[test]
        fn default_config_expands(v in 0u64..10) {
            prop_assert!(v < 10);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(v in 0usize..4) {
                prop_assert!(v > 100, "v was {}", v);
            }
        }
        inner();
    }

    #[test]
    fn rng_for_is_deterministic() {
        use rand::Rng;
        let mut a = crate::rng_for("x");
        let mut b = crate::rng_for("x");
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
