//! Offline drop-in subset of the `criterion` bench API.
//!
//! The build environment has no registry access, so this workspace vendors
//! the slice of `criterion` the `aimc-bench` microbenchmarks use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::sample_size`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! It is a wall-clock smoke runner: each benchmark body runs a short warmup
//! followed by a fixed number of timed samples, and the mean time per
//! iteration is printed. There is no statistical analysis, HTML report, or
//! baseline comparison — enough to keep `cargo bench` meaningful offline.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding `value` (same contract as
/// `criterion::black_box`).
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }

    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }
}

/// Identifier of one benchmark within a group (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id consisting of the parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        println!(
            "  {}/{}: {:?}/iter ({} samples)",
            self.name, id.id, bencher.mean, self.sample_size
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut bencher, input);
        println!(
            "  {}/{}: {:?}/iter ({} samples)",
            self.name, id.id, bencher.mean, self.sample_size
        );
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark body.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    /// Times `f`, storing the mean wall-clock duration per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: let caches/allocator settle and estimate the cost.
        let warmup = Instant::now();
        black_box(f());
        let probe = warmup.elapsed();
        // Budget roughly 200 ms per benchmark, bounded by the sample count.
        let budget = Duration::from_millis(200);
        let iters = if probe.is_zero() {
            self.samples as u64
        } else {
            (budget.as_nanos() / probe.as_nanos().max(1)) as u64
        }
        .clamp(1, self.samples as u64 * 4);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean = start.elapsed() / iters as u32;
    }
}

/// Declares a function bundling benchmark targets (subset of upstream's
/// configurable form).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running one or more [`criterion_group!`] bundles.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut counter = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                counter += 1;
                black_box(counter)
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(counter > 0);
    }
}
